// The chaosfleet experiment: the fleet's worst day. The same
// open-loop arrival methodology as fleet.go, plus the three failure
// modes the resilience layer exists for, all in one run: a permanent
// DMA-engine death mid-schedule, a sustained overload window (gaps
// compressed to a multiple of the offered load), and a burst of
// transient engine faults dense enough to quarantine engines and
// exercise half-open probe re-admission. The report is what an
// operator triages after the incident: goodput, shed rate by reason,
// tail latency of the work that was accepted, and time-to-recover
// after the death. Accepted tasks are never silently lost — every one
// either completes or carries a definite error.

package bench

import (
	"fmt"

	"copier/internal/core"
	"copier/internal/cycles"
	"copier/internal/fault"
	"copier/internal/mem"
	"copier/internal/obs"
	"copier/internal/sim"
	"copier/internal/topo"
	"copier/internal/units"
)

func init() {
	register("chaosfleet", "worst-day fleet: engine death + overload + shedding", runChaosFleet)
}

// chaosFleetConfig is one row of the chaosfleet table.
type chaosFleetConfig struct {
	name     string
	tp       *topo.Topology
	arrival  ArrivalConfig
	arrivals int

	// Overload window: arrivals in [overloadFrom, overloadTo) have
	// their inter-arrival gaps divided by overloadFactor (a sustained
	// open-loop burst; 0/1 disables).
	overloadFrom, overloadTo int
	overloadFactor           sim.Time

	// killNth, when >= 0, pins a permanent failure on the killNth DMA
	// descriptor (fault.Rule with Perm): the engine serving it dies
	// with the descriptor in flight, so the re-steering path is
	// exercised by construction — the killer chunk itself, plus
	// whatever was queued behind it, completes with hw.ErrEngineDead
	// and must find another engine.
	killNth int

	// Transient-fault shape: rates for background noise plus a
	// contiguous rule burst [burstFrom, burstTo) of forced SiteDMA
	// failures — long enough to drive engines into quarantine.
	faultSeed          uint64
	rates              fault.Rates
	burstFrom, burstTo int

	// deadline, when nonzero, stamps every task with an SLO deadline
	// this far after its scheduled arrival.
	deadline sim.Time

	// Admission/brownout knobs copied onto the service config.
	maxPending        int
	brownoutHigh      int64
	brownoutShedBelow int64
}

// ChaosFleetResult is the measured outcome of one chaosfleet run.
type ChaosFleetResult struct {
	Name string
	// Accepted is the ring-accepted submission count; RingShed counts
	// open-loop drops at a full shard ring (before admission).
	Accepted, RingShed int
	// Terminal outcome classes over accepted tasks. Lost is accepted
	// tasks with no terminal state at the end of the run — the
	// zero-loss invariant requires it to be 0.
	Completed, Rejected, DeadlineShed, Failed, Lost int
	// Latency quantiles (cycles, scheduled arrival → completion) over
	// completed tasks; DegradedP99 covers only completions inside the
	// post-death degradation window.
	P50, P99, Mean, DegradedP99 int64
	// Recovery: engine-death time, first post-death instant the service
	// backlog drained below the recovery watermark, and the difference.
	KillAt, RecoveredAt, TimeToRecover sim.Time
	// MaxBacklog is the peak service backlog observed (bytes).
	MaxBacklog int64
	// LeakedPins is the end-of-run pin audit across every client
	// address space; shed, failed, and re-steered tasks must all have
	// dropped their pins, so any nonzero value is a bug.
	LeakedPins int
	// Service-side resilience counters (see core.Stats).
	EngineDeaths, Resteered, RetryDenied int64
	Quarantines, ProbeRecoveries         int64
	OverloadShedN, BrownoutShedN         int64
	BrownoutEntries                      int64
}

// compressWindow rescales the inter-arrival gaps of arr[from:to] by
// 1/factor, preserving every gap outside the window: a sustained
// overload burst carved into an otherwise unchanged schedule.
func compressWindow(arr []Arrival, from, to int, factor sim.Time) {
	if factor <= 1 || from >= to {
		return
	}
	var prev, out sim.Time
	for i := range arr {
		gap := arr[i].At - prev
		prev = arr[i].At
		if i >= from && i < to {
			gap /= factor
			if gap < 1 {
				gap = 1
			}
		}
		out += gap
		arr[i].At = out
	}
}

// chaosFleetRun executes one worst-day run. Structure follows
// fleetRun, with three additions: a reaper process that kills an
// engine mid-run, a monitor process sampling backlog for the
// time-to-recover measurement, and a terminal-state wait that counts
// shed and failed tasks as done (their handlers never run — the copy
// never happened).
func chaosFleetRun(env *sim.Env, cc chaosFleetConfig) *ChaosFleetResult {
	tp := cc.tp
	nn := tp.Nodes()
	pm := mem.NewPhysMem(tp.TotalMem())
	if nn > 1 {
		if err := pm.ConfigureNodes(nn); err != nil {
			panic(err)
		}
	}
	svcCfg := core.DefaultConfig()
	svcCfg.Topo = tp
	svcCfg.MaxPending = cc.maxPending
	svcCfg.BrownoutHigh = cc.brownoutHigh
	svcCfg.BrownoutShedBelow = cc.brownoutShedBelow
	// Short probe period: the worst day quarantines every engine at
	// once, and re-admission should be bounded by the fault burst's
	// length, not by a conservative production probe cadence.
	svcCfg.QuarantineProbe = 50 * cycles.CyclesPerMicrosecond
	svc := core.NewService(env, pm, svcCfg)
	if cc.rates != (fault.Rates{}) || cc.burstTo > cc.burstFrom || cc.killNth >= 0 {
		inj := fault.New(cc.faultSeed).SetRates(fault.SiteDMA, cc.rates)
		for i := cc.burstFrom; i < cc.burstTo; i++ {
			inj.AddRule(fault.Rule{Site: fault.SiteDMA, Nth: uint64(i), Outcome: fault.Outcome{Fail: true}})
		}
		if cc.killNth >= 0 {
			inj.AddRule(fault.Rule{Site: fault.SiteDMA, Nth: uint64(cc.killNth), Outcome: fault.Outcome{Perm: true}})
		}
		svc.SetFaultInjector(inj)
	}

	// Clients alternate between a production group and a low-shares
	// batch group — the brownout controller's shed order is by shares,
	// so the batch half is the sacrificial class.
	maxSize := units.Bytes(0)
	for _, s := range cc.arrival.Sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	prod := svc.Group("prod", 100)
	batch := svc.Group("batch", 10)
	type chaosClient struct {
		c        *core.Client
		src, dst mem.VA
		as       *mem.AddrSpace
		core     int
	}
	clients := make([]chaosClient, cc.arrival.Clients)
	for i := range clients {
		node := i % nn
		as := mem.NewAddrSpace(pm)
		if nn > 1 {
			as.SetHomeNode(node)
		}
		g := prod
		if i%2 == 1 {
			g = batch
		}
		c := svc.NewClientOn(fmt.Sprintf("chaos-%d", i), as, as, g, node)
		c.EnableShards(tp.CoresPerNode())
		src := as.MMap(maxSize, mem.PermRead|mem.PermWrite, "s")
		dst := as.MMap(maxSize, mem.PermRead|mem.PermWrite, "d")
		if _, err := as.Populate(src, maxSize, true); err != nil {
			panic(err)
		}
		if _, err := as.Populate(dst, maxSize, true); err != nil {
			panic(err)
		}
		clients[i] = chaosClient{c: c, src: src, dst: dst, as: as,
			core: (i / nn) % tp.CoresPerNode()}
	}

	arrivals := Schedule(cc.arrival, cc.arrivals)
	compressWindow(arrivals, cc.overloadFrom, cc.overloadTo, cc.overloadFactor)

	res := &ChaosFleetResult{Name: cc.name}
	hist := &obs.Histogram{}
	// Completion timestamps and latencies, recorded by the (kernel)
	// completion handlers into preallocated arrays so the hot path
	// allocates nothing; the degradation-window quantile is computed
	// after the run, once the window's end is known.
	compAt := make([]sim.Time, len(arrivals))
	compLat := make([]int64, len(arrivals))
	nComp := 0
	doneSig := sim.NewSignal("chaosfleet-done")
	tasks := make([]*core.Task, len(arrivals))
	accepted := make([]bool, len(arrivals))
	for i := range arrivals {
		a := arrivals[i]
		ch := clients[a.Client]
		at := a.At
		t := &core.Task{
			Src: ch.src, Dst: ch.dst, SrcAS: ch.as, DstAS: ch.as, Len: a.Size,
			Desc: core.NewDescriptor(ch.dst, a.Size, core.DefaultSegSize),
			Handler: &core.Handler{Kernel: true, Fn: func() {
				lat := int64(env.Now() - at)
				hist.Observe(lat)
				compAt[nComp] = env.Now()
				compLat[nComp] = lat
				nComp++
				doneSig.Broadcast(env)
			}},
		}
		if cc.deadline > 0 {
			t.Deadline = a.At + cc.deadline
		}
		tasks[i] = t
	}

	const pollGap = 5 * cycles.CyclesPerMicrosecond
	// recoverBelow is the backlog watermark defining "recovered": the
	// first post-death sample under it ends the degradation window.
	const recoverBelow = 256 << 10
	monitorStop := false
	env.Go("chaos-monitor", func(p *sim.Proc) {
		for !monitorStop {
			b := svc.Backlog()
			if b > res.MaxBacklog {
				res.MaxBacklog = b
			}
			if res.KillAt == 0 {
				for _, d := range svc.DMAs() {
					if d.Dead() {
						res.KillAt = d.DiedAt()
						break
					}
				}
			}
			if res.KillAt > 0 && res.RecoveredAt == 0 && p.Now() > res.KillAt && b < recoverBelow {
				res.RecoveredAt = p.Now()
			}
			p.Wait(pollGap)
		}
	})

	driverDone := false
	env.Go("chaosfleet-driver", func(p *sim.Proc) {
		for i := range arrivals {
			a := arrivals[i]
			if a.At > p.Now() {
				p.Wait(a.At - p.Now())
			}
			ch := clients[a.Client]
			if ch.c.SubmitCopyOn(ch.core, tasks[i]) {
				accepted[i] = true
				res.Accepted++
			} else {
				res.RingShed++
			}
		}
		// Wait for every accepted task to reach a terminal state.
		// Completion handlers only run for successful tasks; shed and
		// failed ones terminate via Executed/Aborted with a definite
		// error, so the wait polls the task states rather than counting
		// handler invocations.
		for {
			term := 0
			for i, t := range tasks {
				if accepted[i] && (t.Executed() || t.Aborted()) {
					term++
				}
			}
			if term >= res.Accepted {
				break
			}
			p.Wait(pollGap)
		}
		driverDone = true
		monitorStop = true
		svc.Stop()
	})
	for slot := 0; slot < nn; slot++ {
		slot := slot
		env.Go("copierd", func(p *sim.Proc) { svc.ThreadMain(benchCtx{p}, slot) })
	}
	if err := env.Run(100_000_000_000); err != nil {
		if _, ok := err.(*sim.DeadlockError); !ok {
			panic(err)
		}
	}
	if !driverDone {
		panic(fmt.Sprintf("chaosfleet %s: run ended with driver still waiting", cc.name))
	}

	// Classify terminal states. Lost must end at zero: acceptance into
	// the service means the task completes or fails definitely, even
	// across a permanent engine death.
	for i, t := range tasks {
		if !accepted[i] {
			continue
		}
		switch {
		case !t.Executed() && !t.Aborted():
			res.Lost++
		case t.Err() == nil:
			res.Completed++
		case t.Err() == core.ErrOverload:
			res.Rejected++
		case t.Err() == core.ErrDeadline:
			res.DeadlineShed++
		default:
			res.Failed++
		}
	}
	for i := range clients {
		res.LeakedPins += clients[i].as.AuditLeaks().PinCount
	}
	res.P50 = hist.Quantile(0.50)
	res.P99 = hist.Quantile(0.99)
	res.Mean = hist.Mean()
	if res.KillAt > 0 {
		end := env.Now()
		if res.RecoveredAt > 0 {
			end = res.RecoveredAt
			res.TimeToRecover = res.RecoveredAt - res.KillAt
		}
		dh := &obs.Histogram{}
		for i := 0; i < nComp; i++ {
			if compAt[i] >= res.KillAt && compAt[i] <= end {
				dh.Observe(compLat[i])
			}
		}
		res.DegradedP99 = dh.Quantile(0.99)
	}
	res.EngineDeaths = svc.Stats.EngineDeaths
	res.Resteered = svc.Stats.ResteeredChunks
	res.RetryDenied = svc.Stats.RetryDenied
	res.Quarantines = svc.Stats.Quarantines
	res.ProbeRecoveries = svc.Stats.ProbeRecoveries
	res.OverloadShedN = svc.Stats.OverloadShed
	res.BrownoutShedN = svc.Stats.BrownoutShed
	res.BrownoutEntries = svc.Stats.BrownoutEntries
	return res
}

// chaosFleetConfigs returns the two-row sweep: an unloaded baseline
// (same schedule, no chaos — the reference p99) and the worst day.
func chaosFleetConfigs(s Scale) []chaosFleetConfig {
	clients, arrivals := 16, 700
	if s == Full {
		clients, arrivals = 64, 3000
	}
	arrival := ArrivalConfig{
		Seed:    0xc4a05,
		MeanGap: 20_000,
		Clients: clients,
		Sizes:   []units.Bytes{4 << 10, 16 << 10, 64 << 10, 256 << 10},
	}
	tp := topo.NUMA(4, 2, 64<<20)
	base := chaosFleetConfig{
		name: "baseline", tp: tp, arrival: arrival, arrivals: arrivals,
		killNth: -1,
	}
	worst := base
	worst.name = "worst-day"
	// Sustained 6x overload across the middle third of the schedule.
	worst.overloadFrom = arrivals / 3
	worst.overloadTo = arrivals/3 + arrivals/3
	worst.overloadFactor = 6
	// One engine dies permanently mid-overload: the descriptor that
	// draws the pinned Perm outcome kills whichever engine is serving
	// it, in flight, with the overload window's queue behind it.
	worst.killNth = arrivals / 3
	// Background transient faults plus a forced failure burst dense
	// enough to quarantine engines and exercise probe re-admission.
	worst.faultSeed = 0xbad0da7
	worst.rates = fault.Rates{FailPpm: 20_000}
	worst.burstFrom = 120
	worst.burstTo = 220
	// Every task carries an SLO deadline; overload-window stragglers
	// are shed instead of served dead.
	worst.deadline = 60 * cycles.CyclesPerMicrosecond
	worst.maxPending = 48
	worst.brownoutHigh = 3 << 19
	worst.brownoutShedBelow = 50
	return []chaosFleetConfig{base, worst}
}

func chaosFleetResults(s Scale) []*ChaosFleetResult {
	configs := chaosFleetConfigs(s)
	out := make([]*ChaosFleetResult, len(configs))
	sim.RunJobs(len(configs), parWorkers, func(jc *sim.JobCtx) {
		out[jc.Index()] = chaosFleetRun(jc.NewEnv(), configs[jc.Index()])
	})
	return out
}

// ChaosFleetQuickResults runs the Quick-scale sweep (the microbench
// JSON export path).
func ChaosFleetQuickResults() []*ChaosFleetResult {
	return chaosFleetResults(Quick)
}

func runChaosFleet(s Scale) []*Table {
	t := &Table{ID: "chaosfleet", Title: "Worst-day fleet: permanent engine death + overload + SLO shedding",
		Columns: []string{"config", "accepted", "done", "shed o/d/b", "failed", "lost",
			"p50 us", "p99 us", "deg p99 us", "deaths", "resteer", "recover us"}}
	for _, r := range chaosFleetResults(s) {
		recover := "-"
		if r.TimeToRecover > 0 {
			recover = fmt.Sprintf("%.0f", cycles.ToMicroseconds(r.TimeToRecover))
		}
		degp99 := "-"
		if r.DegradedP99 > 0 {
			degp99 = fmt.Sprintf("%.1f", cycles.ToMicroseconds(sim.Time(r.DegradedP99)))
		}
		t.AddRow(r.Name,
			fmt.Sprintf("%d", r.Accepted),
			fmt.Sprintf("%d", r.Completed),
			fmt.Sprintf("%d/%d/%d", int(r.OverloadShedN), r.DeadlineShed, int(r.BrownoutShedN)),
			fmt.Sprintf("%d", r.Failed),
			fmt.Sprintf("%d", r.Lost),
			fmt.Sprintf("%.1f", cycles.ToMicroseconds(sim.Time(r.P50))),
			fmt.Sprintf("%.1f", cycles.ToMicroseconds(sim.Time(r.P99))),
			degp99,
			fmt.Sprintf("%d", r.EngineDeaths),
			fmt.Sprintf("%d", r.Resteered),
			recover)
	}
	t.Note("worst-day = 6x overload window + one engine dying permanently mid-window (in-flight descriptor draws a pinned Perm fault) + transient fault burst; shed o/d/b = admission overload / SLO deadline / brownout priority")
	t.Note("lost must be 0: accepted tasks either complete or fail with a definite error — engine death never silently drops work")
	return []*Table{t}
}
