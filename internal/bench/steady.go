package bench

import (
	"copier/internal/core"
	"copier/internal/mem"
	"copier/internal/sim"
	"copier/internal/units"
)

// steadyService is a persistent simulated service world for
// steady-state measurement: the environment, physical memory, address
// space, buffers and task objects are built once, and each Op recycles
// the same tasks through submit → admit → dispatch → completion. This
// is what the service/throughput-64k microbenchmark and the
// allocation pin measure — the dispatch path itself, with setup cost
// (page tables, descriptors, populate faults) priced outside the
// timed loop.
type steadyService struct {
	env    *sim.Env
	svc    *core.Service
	client *core.Client
	tasks  []*core.Task
	done   int
}

// steadyQuantum bounds each Env.Run slice so the host loop regains
// control between slices; the sleeping service thread always keeps a
// NAPI timer pending, so bounded runs never deadlock. steadyStall is
// the op deadline: a 40-task batch finishes in well under a virtual
// millisecond, so ten thousand quanta means the world wedged.
const (
	steadyQuantum sim.Time = 1_000_000
	steadyStall            = 10_000 * steadyQuantum
)

// newSteadyService builds the world: ntasks independent src/dst buffer
// pairs (no inter-task dependencies, so the dispatcher can fuse
// freely) and one long-lived service thread parked in its NAPI sleep.
func newSteadyService(size units.Bytes, ntasks int) *steadyService {
	ss := &steadyService{env: sim.NewEnv()}
	pm := mem.NewPhysMem(64 << 20)
	ss.svc = core.NewService(ss.env, pm, core.DefaultConfig())
	as := mem.NewAddrSpace(pm)
	ss.client = ss.svc.NewClient("steady", as, as, nil)
	for i := 0; i < ntasks; i++ {
		src := as.MMap(size, mem.PermRead|mem.PermWrite, "s")
		dst := as.MMap(size, mem.PermRead|mem.PermWrite, "d")
		if _, err := as.Populate(src, size, true); err != nil {
			panic(err)
		}
		if _, err := as.Populate(dst, size, true); err != nil {
			panic(err)
		}
		t := &core.Task{Src: src, Dst: dst, SrcAS: as, DstAS: as, Len: size,
			Handler: &core.Handler{Kernel: true, Fn: func() { ss.done++ }}}
		ss.tasks = append(ss.tasks, t)
	}
	ss.env.Go("copierd", func(p *sim.Proc) { ss.svc.ThreadMain(benchCtx{p}, 0) })
	ss.step() // let the thread drain its startup sweep and go idle
	return ss
}

func (ss *steadyService) step() {
	if err := ss.env.Run(ss.env.Now() + steadyQuantum); err != nil {
		panic(err)
	}
}

// Op recycles every task in place, resubmits the batch, and runs the
// simulation until all of them complete. Panics if the world wedges —
// a benchmark harness has no error channel worth plumbing.
func (ss *steadyService) Op() {
	ss.done = 0
	for _, t := range ss.tasks {
		t.Reuse()
		if !ss.client.SubmitCopy(t, false) {
			panic("bench: steady ring full")
		}
	}
	deadline := ss.env.Now() + steadyStall
	for ss.done < len(ss.tasks) {
		if ss.env.Now() >= deadline {
			panic("bench: steady op stalled")
		}
		ss.step()
	}
}

// Close stops the service thread so its goroutine exits.
func (ss *steadyService) Close() {
	ss.svc.Stop()
	if err := ss.env.Run(ss.env.Now() + 16*steadyQuantum); err != nil {
		panic(err)
	}
}
