package bench

import (
	"bytes"
	"testing"
)

// The shards=1-vs-N byte-identity goldens: the acceptance bar for the
// parallel event loop. Each experiment runs once serial and once on 4
// host worker threads; the printed tables AND the Perfetto export must
// match byte for byte. Conservative-lookahead windows (sim.ShardSet)
// and job pools (sim.RunJobs) are both constructed so that host
// scheduling can never reach the observable stream — these tests are
// what enforces that construction.
func testShardIdentity(t *testing.T, id string) {
	t.Helper()
	if testing.Short() {
		t.Skipf("runs %s twice", id)
	}
	SetWorkers(1)
	tbl1, exp1, _ := runTraced(t, id)
	SetWorkers(4)
	defer SetWorkers(1)
	tbl4, exp4, _ := runTraced(t, id)

	if tbl1 != tbl4 {
		t.Errorf("printed series differ between 1 and 4 workers:\n%s", lineDiff(tbl1, tbl4))
	}
	if !bytes.Equal(exp1, exp4) {
		t.Errorf("obs exports differ between 1 and 4 workers:\n%s",
			lineDiff(string(exp1), string(exp4)))
	}
}

func TestShardIdentityFig9(t *testing.T)     { testShardIdentity(t, "fig9") }
func TestShardIdentityFig12b(t *testing.T)   { testShardIdentity(t, "fig12b") }
func TestShardIdentityChaos(t *testing.T)    { testShardIdentity(t, "chaos") }
func TestShardIdentityFleet(t *testing.T)    { testShardIdentity(t, "fleet") }
func TestShardIdentityFleetPar(t *testing.T) { testShardIdentity(t, "fleetpar") }
