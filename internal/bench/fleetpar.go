// The fleetpar experiment: the fleet workload restructured for the
// sharded parallel event loop. Where fleet runs one simulation
// environment for the whole machine, fleetpar gives every NUMA node
// its own shard — an independent environment with its own service,
// DMA engine and arrival stream — and coordinates the shards with a
// conservative lookahead window (sim.ShardSet). A fixed fraction of
// each shard's arrivals are remote: forwarded to the next node over
// the simulated interconnect with delay >= the lookahead, which is
// exactly the NIC-submit-plus-transfer latency floor that makes the
// windows safe. Output is byte-identical at every worker count; wall
// clock is what the parallel-speedup microbench series measures.
package bench

import (
	"fmt"

	"copier/internal/core"
	"copier/internal/cycles"
	"copier/internal/mem"
	"copier/internal/obs"
	"copier/internal/sim"
	"copier/internal/topo"
	"copier/internal/units"
)

func init() {
	register("fleetpar", "§6 sharded fleet on the parallel event loop", runFleetPar)
}

// FleetParResult is the outcome of one sharded fleet run; identical
// for every worker count by construction.
type FleetParResult struct {
	Shards    int
	Workers   int
	Lookahead sim.Time
	// Windows/Cross report the conservative engine's work: lookahead
	// windows executed and cross-shard events delivered.
	Windows int64
	Cross   int64
	// Submitted/Remote/Completed count tasks; Shed counts arrivals
	// dropped on a full ring.
	Submitted int64
	Remote    int64
	Completed int64
	Shed      int64
	// Latency quantiles in cycles, merged across shards in shard
	// order (submission at the serving shard → completion).
	P50, P99, Mean int64
}

// fleetParCell is one shard's world: environment, service, client,
// buffers, schedule, and completion accounting.
type fleetParCell struct {
	env      *sim.Env
	svc      *core.Service
	client   *core.Client
	as       *mem.AddrSpace
	src, dst mem.VA
	hist     *obs.Histogram
	arrivals []Arrival
	// expected is how many completions this shard's service must see
	// before it may stop (local non-remote arrivals + inbound
	// remotes); shed submissions decrement it.
	expected  int64
	completed int64
	shed      int64
	// submitted/remote count this shard's own arrivals (touched only
	// by its driver, so the counters stay shard-private under
	// parallel windows).
	submitted int64
	remote    int64
}

func (c *fleetParCell) maybeStop() {
	if c.completed >= c.expected {
		c.svc.Stop()
	}
}

// fleetParRemote reports whether arrival j of a shard is forwarded to
// the next node: every 4th arrival, i.e. a deterministic 25% remote
// fraction.
func fleetParRemote(j int) bool { return j%4 == 3 }

// FleetParRun executes the sharded fleet on `workers` host threads
// and returns the merged result. topo: 4 nodes x 2 cores; lookahead:
// the minimum cross-node submit latency from the cost model — no
// cross-shard interaction can be faster, so the conservative window
// is safe (see DESIGN.md).
func FleetParRun(workers int) *FleetParResult {
	const (
		nTasks  = 200
		maxSize = units.Bytes(64 << 10)
	)
	tp := topo.NUMA(4, 2, 64<<20)
	nn := tp.Nodes()
	lookahead := cycles.RemoteSubmitLatency(tp.MinRemoteDist())
	set := sim.NewShardSet(nn, lookahead, workers)

	cells := make([]*fleetParCell, nn)
	for i := 0; i < nn; i++ {
		env := set.Shard(i)
		pm := mem.NewPhysMem(64 << 20)
		svc := core.NewService(env, pm, core.DefaultConfig())
		as := mem.NewAddrSpace(pm)
		client := svc.NewClient(fmt.Sprintf("fleetpar-%d", i), as, as, nil)
		src := as.MMap(maxSize, mem.PermRead|mem.PermWrite, "s")
		dst := as.MMap(maxSize, mem.PermRead|mem.PermWrite, "d")
		if _, err := as.Populate(src, maxSize, true); err != nil {
			panic(err)
		}
		if _, err := as.Populate(dst, maxSize, true); err != nil {
			panic(err)
		}
		cells[i] = &fleetParCell{
			env: env, svc: svc, client: client, as: as, src: src, dst: dst,
			hist: &obs.Histogram{},
			arrivals: Schedule(ArrivalConfig{
				Seed:    0xf1ee7 + uint64(i),
				MeanGap: 20_000,
				Clients: 1,
				Sizes:   []units.Bytes{16 << 10, 64 << 10},
			}, nTasks),
		}
	}

	// Expected completions per shard: local arrivals stay home, every
	// remote arrival of shard i lands on shard (i+1) mod nn.
	for i, c := range cells {
		for j := range c.arrivals {
			if fleetParRemote(j) {
				cells[(i+1)%nn].expected++
			} else {
				c.expected++
			}
		}
	}

	var res FleetParResult
	// submit enqueues one prepared task on the serving cell, stamping
	// the submission time its latency is measured from. It runs either
	// in the local driver's context or as a delivered cross-shard
	// event; both are inside the serving shard's event loop.
	submit := func(c *fleetParCell, t *core.Task, submitAt *sim.Time) {
		*submitAt = c.env.Now()
		if !c.client.SubmitCopy(t, false) {
			c.shed++
			c.expected--
			c.maybeStop()
		}
	}
	// Prepare every task up front: the serving cell's buffers, a
	// descriptor, and a completion handler feeding that cell's
	// histogram. tasksFor[i][j] is shard i's j-th arrival, already
	// homed on its serving cell.
	tasksFor := make([][]*core.Task, nn)
	submitAts := make([][]sim.Time, nn)
	for i, c := range cells {
		tasksFor[i] = make([]*core.Task, len(c.arrivals))
		submitAts[i] = make([]sim.Time, len(c.arrivals))
		for j := range c.arrivals {
			serve := c
			if fleetParRemote(j) {
				serve = cells[(i+1)%nn]
			}
			size := c.arrivals[j].Size
			at := &submitAts[i][j]
			sc := serve
			t := &core.Task{
				Src: serve.src, Dst: serve.dst, SrcAS: serve.as, DstAS: serve.as, Len: size,
				Desc: core.NewDescriptor(serve.dst, size, core.DefaultSegSize),
			}
			t.Handler = &core.Handler{Kernel: true, Fn: func() {
				sc.hist.Observe(int64(sc.env.Now() - *at))
				sc.completed++
				sc.maybeStop()
			}}
			tasksFor[i][j] = t
		}
	}

	for i := range cells {
		i := i
		c := cells[i]
		c.env.Go("fleetpar-driver", func(p *sim.Proc) {
			for j := range c.arrivals {
				a := c.arrivals[j]
				if a.At > p.Now() {
					p.Wait(a.At - p.Now())
				}
				t := tasksFor[i][j]
				at := &submitAts[i][j]
				if fleetParRemote(j) {
					dst := (i + 1) % len(cells)
					sc := cells[dst]
					set.Send(i, dst, lookahead, func() { submit(sc, t, at) })
					c.remote++
				} else {
					submit(c, t, at)
				}
				c.submitted++
			}
		})
		c.env.Go("copierd", func(p *sim.Proc) { c.svc.ThreadMain(benchCtx{p}, 0) })
	}

	if err := set.Run(100_000_000_000); err != nil {
		if _, ok := err.(*sim.DeadlockError); !ok {
			panic(err)
		}
	}
	merged := &obs.Histogram{}
	for _, c := range cells {
		if c.completed < c.expected {
			panic(fmt.Sprintf("fleetpar: shard stalled at %d/%d completions", c.completed, c.expected))
		}
		res.Completed += c.completed
		res.Shed += c.shed
		res.Submitted += c.submitted
		res.Remote += c.remote
		merged.Merge(c.hist)
	}
	res.Shards = nn
	res.Workers = workers
	res.Lookahead = lookahead
	res.Windows = set.Windows()
	res.Cross = set.CrossDelivered()
	res.P50 = merged.Quantile(0.50)
	res.P99 = merged.Quantile(0.99)
	res.Mean = merged.Mean()
	return &res
}

// runFleetPar renders the experiment table. The row is identical for
// every worker count — that is the point — so the table reports the
// conservative engine's bookkeeping alongside the SLO view.
func runFleetPar(s Scale) []*Table {
	r := FleetParRun(parWorkers)
	t := &Table{ID: "fleetpar", Title: "Sharded fleet on the conservative parallel event loop",
		Columns: []string{"shards", "lookahead us", "windows", "cross", "submitted", "remote", "shed", "p50 us", "p99 us", "mean us"}}
	t.AddRow(
		fmt.Sprintf("%d", r.Shards),
		fmt.Sprintf("%.1f", cycles.ToMicroseconds(r.Lookahead)),
		fmt.Sprintf("%d", r.Windows),
		fmt.Sprintf("%d", r.Cross),
		fmt.Sprintf("%d", r.Submitted),
		fmt.Sprintf("%d", r.Remote),
		fmt.Sprintf("%d", r.Shed),
		fmt.Sprintf("%.1f", cycles.ToMicroseconds(sim.Time(r.P50))),
		fmt.Sprintf("%.1f", cycles.ToMicroseconds(sim.Time(r.P99))),
		fmt.Sprintf("%.1f", cycles.ToMicroseconds(sim.Time(r.Mean))))
	t.Note("one shard per NUMA node; 25%% of each shard's arrivals forwarded to the next node with delay = remote submit latency (= the lookahead)")
	t.Note("output is byte-identical for every worker count (enforced by TestShardIdentityFleetPar); wall-clock speedup is recorded in the microbench report")
	return []*Table{t}
}
