package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"copier/internal/core"
	"copier/internal/mem"
	"copier/internal/obs"
	"copier/internal/sim"
	"copier/internal/topo"
	"copier/internal/units"
)

// TestFleetSmoke runs one small open-loop configuration per topology
// shape and sanity-checks the result: every submitted task completes,
// the quantiles are ordered, and utilization is a fraction. Fast
// enough for scripts/check.sh.
func TestFleetSmoke(t *testing.T) {
	arrival := ArrivalConfig{
		Seed:    7,
		MeanGap: 25_000,
		Clients: 8,
		Sizes:   []units.Bytes{4 << 10, 64 << 10},
	}
	for _, fc := range []fleetConfig{
		{name: "smoke-1node", tp: topo.SingleNode(4, 128<<20), arrival: arrival, arrivals: 60},
		{name: "smoke-4node", tp: topo.NUMA(4, 2, 32<<20), arrival: arrival, arrivals: 60},
	} {
		r := fleetRun(sim.NewEnv(), fc)
		if r.Submitted+r.Shed != 60 {
			t.Fatalf("%s: submitted %d + shed %d != 60", fc.name, r.Submitted, r.Shed)
		}
		if r.Submitted == 0 {
			t.Fatalf("%s: everything shed", fc.name)
		}
		if r.P50 <= 0 || r.P50 > r.P99 || r.P99 > r.P999 {
			t.Fatalf("%s: quantiles out of order: p50=%d p99=%d p999=%d",
				fc.name, r.P50, r.P99, r.P999)
		}
		if len(r.NodeUtil) != fc.tp.Nodes() {
			t.Fatalf("%s: %d utilization entries for %d nodes", fc.name, len(r.NodeUtil), fc.tp.Nodes())
		}
		var total int64
		for i, u := range r.NodeUtil {
			if u < 0 || u > 1 {
				t.Fatalf("%s: node %d utilization %f out of [0,1]", fc.name, i, u)
			}
		}
		for _, h := range r.PerNode {
			total += h.Count()
		}
		if total != int64(r.Submitted) {
			t.Fatalf("%s: per-node histograms hold %d observations, want %d", fc.name, total, r.Submitted)
		}
	}
}

// TestFleetDeterministic is the open-loop golden: the fleet sweep —
// thousands of shard-ring submissions racing four service threads and
// four DMA engines — must be byte-identical across two in-process
// runs, tables and trace export both. This is the widest determinism
// surface in the repo: steering decisions, spill accounting and
// per-node histograms all feed the output.
func TestFleetDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs fleet twice")
	}
	tbl1, exp1, rec := runTraced(t, "fleet")
	tbl2, exp2, _ := runTraced(t, "fleet")

	if tbl1 != tbl2 {
		t.Errorf("printed tables differ between runs:\n%s", lineDiff(tbl1, tbl2))
	}
	if !bytes.Equal(exp1, exp2) {
		t.Errorf("obs exports differ between runs:\n%s",
			lineDiff(string(exp1), string(exp2)))
	}
	if !json.Valid(exp1) {
		t.Fatal("export is not valid JSON")
	}
	if rec.Total() == 0 {
		t.Fatal("recorder saw no events")
	}
}

// TestFig9NUMADeterministic pins the NUMA variant of the fig9 sweep:
// multi-threaded sharded service, asymmetric distance matrix, remote
// placements — two runs must agree byte for byte.
func TestFig9NUMADeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs fig9numa twice")
	}
	tbl1, exp1, _ := runTraced(t, "fig9numa")
	tbl2, exp2, _ := runTraced(t, "fig9numa")

	if tbl1 != tbl2 {
		t.Errorf("printed tables differ between runs:\n%s", lineDiff(tbl1, tbl2))
	}
	if !bytes.Equal(exp1, exp2) {
		t.Errorf("obs exports differ between runs:\n%s",
			lineDiff(string(exp1), string(exp2)))
	}
}

// TestFleetSubmitHotLoopAllocFree pins the fleet driver's steady
// state: with the schedule and tasks pregenerated, one submit —
// shard-ring push plus latency observation — must not allocate.
func TestFleetSubmitHotLoopAllocFree(t *testing.T) {
	env := sim.NewEnv()
	pm := mem.NewPhysMem(64 << 20)
	svc := core.NewService(env, pm, core.DefaultConfig())
	as := mem.NewAddrSpace(pm)
	c := svc.NewClient("pin", as, as, nil)
	c.EnableShards(2)

	const n = 4 << 10
	src := as.MMap(n, mem.PermRead|mem.PermWrite, "s")
	dst := as.MMap(n, mem.PermRead|mem.PermWrite, "d")
	if _, err := as.Populate(src, n, true); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Populate(dst, n, true); err != nil {
		t.Fatal(err)
	}

	const runs = 200
	tasks := make([]*core.Task, runs+10)
	for i := range tasks {
		tasks[i] = &core.Task{Src: src, Dst: dst, SrcAS: as, DstAS: as, Len: n,
			Desc: core.NewDescriptor(dst, n, core.DefaultSegSize)}
	}
	hist := &obs.Histogram{}
	i := 0
	if got := testing.AllocsPerRun(runs, func() {
		if !c.SubmitCopyOn(i%2, tasks[i]) {
			// Keep the loop allocation-free even when the ring fills:
			// drain it the way the service would.
			ctx := drainCtx{}
			c.Shards.Ring(0).PopN(drainBuf[:])
			c.Shards.Ring(1).PopN(drainBuf[:])
			_ = ctx
		}
		hist.Observe(int64(i))
		i++
	}); got != 0 {
		t.Fatalf("fleet submit hot loop allocates %v per iteration", got)
	}
}

var drainBuf [64]*core.Task

type drainCtx struct{}

func (drainCtx) Exec(sim.Time)                           {}
func (drainCtx) Block(*sim.Signal)                       {}
func (drainCtx) SpinUntil(*sim.Signal)                   {}
func (drainCtx) BlockTimeout(*sim.Signal, sim.Time) bool { return false }
func (drainCtx) Now() sim.Time                           { return 0 }
func (drainCtx) Env() *sim.Env                           { return nil }
