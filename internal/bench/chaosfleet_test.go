package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"copier/internal/sim"
)

// TestChaosFleetInvariants runs the worst-day sweep once and checks
// the resilience acceptance bar on the raw results:
//
//   - Zero accepted-task loss: every ring-accepted task reaches a
//     terminal state — completed, shed with a definite error, or
//     failed with a definite error — even though one engine dies
//     permanently mid-run.
//   - The worst day actually happened: the engine death registered,
//     its in-flight chunks were re-steered, engines were quarantined
//     and readmitted by probes, and the overload window shed work.
//   - Bounded degradation: p99 of accepted tasks stays within 5x the
//     unloaded baseline's p99, time-to-recover is finite, and the
//     backlog stays bounded.
//   - No pin leaks: shed and failed tasks released everything.
func TestChaosFleetInvariants(t *testing.T) {
	rs := ChaosFleetQuickResults()
	if len(rs) != 2 {
		t.Fatalf("expected baseline + worst-day, got %d rows", len(rs))
	}
	base, worst := rs[0], rs[1]

	for _, r := range rs {
		if r.Accepted == 0 {
			t.Fatalf("%s: no tasks accepted", r.Name)
		}
		if r.Lost != 0 {
			t.Errorf("%s: %d accepted tasks lost without a terminal state", r.Name, r.Lost)
		}
		if got := r.Completed + r.Rejected + r.DeadlineShed + r.Failed + r.Lost; got != r.Accepted {
			t.Errorf("%s: terminal classes sum to %d, accepted %d", r.Name, got, r.Accepted)
		}
		if r.LeakedPins != 0 {
			t.Errorf("%s: %d pins leaked", r.Name, r.LeakedPins)
		}
	}

	// Baseline is the unloaded reference: nothing shed, nothing failed.
	if base.Failed != 0 || base.Rejected != 0 || base.DeadlineShed != 0 {
		t.Errorf("baseline had failures/shed: %+v", *base)
	}
	if base.EngineDeaths != 0 {
		t.Errorf("baseline lost an engine: %d deaths", base.EngineDeaths)
	}

	// The worst day must actually exercise every mechanism.
	if worst.EngineDeaths != 1 {
		t.Errorf("worst-day engine deaths = %d, want 1", worst.EngineDeaths)
	}
	if worst.Resteered == 0 {
		t.Error("worst-day re-steered no chunks off the dead engine")
	}
	if worst.Quarantines == 0 || worst.ProbeRecoveries == 0 {
		t.Errorf("worst-day quarantine cycle not exercised: %d quarantines, %d probe recoveries",
			worst.Quarantines, worst.ProbeRecoveries)
	}
	shed := int(worst.OverloadShedN) + worst.DeadlineShed + int(worst.BrownoutShedN)
	if shed == 0 {
		t.Error("worst-day shed nothing under overload")
	}
	if worst.BrownoutEntries == 0 {
		t.Error("worst-day never entered brownout")
	}

	// Bounded degradation.
	if base.P99 <= 0 {
		t.Fatalf("baseline p99 = %d", base.P99)
	}
	if worst.P99 > 5*base.P99 {
		t.Errorf("worst-day p99 %d exceeds 5x baseline p99 %d", worst.P99, base.P99)
	}
	if worst.KillAt == 0 {
		t.Error("worst-day engine death not observed by the monitor")
	}
	if worst.TimeToRecover <= 0 {
		t.Errorf("worst-day did not recover (killAt=%d recoveredAt=%d)",
			worst.KillAt, worst.RecoveredAt)
	}
	// The admission bound caps any one client's pending list; the
	// backlog bound here is the coarser whole-service sanity check that
	// overload cannot grow the queues without limit.
	if maxB := worst.MaxBacklog; maxB > 64<<20 {
		t.Errorf("worst-day backlog unbounded: peak %d bytes", maxB)
	}
}

// TestChaosFleetDeterministic is the worst-day repeatability golden:
// engine death, quarantine probes, brownout transitions, and shedding
// decisions must all replay byte-identically — both the printed table
// and the Perfetto export.
func TestChaosFleetDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs chaosfleet twice")
	}
	tbl1, exp1, rec := runTraced(t, "chaosfleet")
	tbl2, exp2, _ := runTraced(t, "chaosfleet")

	if tbl1 != tbl2 {
		t.Errorf("printed series differ between runs:\n%s", lineDiff(tbl1, tbl2))
	}
	if !bytes.Equal(exp1, exp2) {
		t.Errorf("obs exports differ between runs:\n%s",
			lineDiff(string(exp1), string(exp2)))
	}
	if !json.Valid(exp1) {
		t.Fatal("export is not valid JSON")
	}
	if rec.Total() == 0 {
		t.Fatal("recorder saw no events")
	}
}

func TestShardIdentityChaosFleet(t *testing.T) { testShardIdentity(t, "chaosfleet") }

// TestCompressWindow pins the overload-window transform: gaps outside
// the window unchanged, gaps inside divided (floored at one cycle),
// arrival times still strictly increasing.
func TestCompressWindow(t *testing.T) {
	arr := []Arrival{{At: 10}, {At: 30}, {At: 31}, {At: 45}, {At: 60}}
	compressWindow(arr, 1, 3, 2)
	want := []sim.Time{10, 20, 21, 35, 50}
	for i, w := range want {
		if arr[i].At != w {
			t.Errorf("arr[%d].At = %d, want %d", i, arr[i].At, w)
		}
	}
	for i := 1; i < len(arr); i++ {
		if arr[i].At <= arr[i-1].At {
			t.Errorf("arrival times not strictly increasing at %d", i)
		}
	}
}
