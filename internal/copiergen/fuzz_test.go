package copiergen

import (
	"bytes"
	"errors"
	"testing"
)

// decodeFunc deterministically grows a straight-line mini-IR program
// from fuzz bytes: a handful of buffer variables and a bounded op
// stream over them. The generator never references a freed buffer and
// never emits pass-output ops (amemcpy/csync), so every produced
// program is a valid CopierGen *input* whose synchronous execution
// cannot fail.
func decodeFunc(data []byte) *Func {
	if len(data) < 4 {
		return nil
	}
	pos := 0
	next := func() int {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return int(b)
	}
	nv := next()%3 + 2 // 2..4 variables
	f := &Func{Name: "fuzz"}
	for i := 0; i < nv; i++ {
		f.Vars = append(f.Vars, Var{
			Name: string(rune('a' + i)),
			Size: (next()%8 + 1) * 16, // 16..128 bytes
		})
	}
	freed := map[string]bool{}
	// rng picks an offset/length pair inside v.
	rng := func(v Var) (int, int) {
		off := next() % v.Size
		n := next()%(v.Size-off) + 1
		return off, n
	}
	for pos < len(data) && len(f.Ops) < 32 {
		v1 := f.Vars[next()%nv]
		v2 := f.Vars[next()%nv]
		if freed[v1.Name] || freed[v2.Name] {
			f.Ops = append(f.Ops, Op{Kind: OpCompute})
			continue
		}
		switch next() % 10 {
		case 0, 1, 2: // copies dominate: they are what the passes rewrite
			dOff, n := rng(v1)
			sOff := 0
			if v2.Size > n {
				sOff = next() % (v2.Size - n)
			}
			if sOff+n > v2.Size {
				n = v2.Size - sOff
			}
			if n <= 0 {
				f.Ops = append(f.Ops, Op{Kind: OpCompute})
				continue
			}
			f.Ops = append(f.Ops, Op{Kind: OpCopy,
				Dst: v1.Name, DstOff: dOff, Src: v2.Name, SrcOff: sOff, Len: n})
		case 3, 4: // load (observes memory)
			off, n := rng(v1)
			f.Ops = append(f.Ops, Op{Kind: OpLoad, Src: v1.Name, SrcOff: off, Len: n})
		case 5, 6: // store
			off, n := rng(v1)
			f.Ops = append(f.Ops, Op{Kind: OpStore, Dst: v1.Name, DstOff: off, Len: n})
		case 7: // external call observing the whole buffer
			f.Ops = append(f.Ops, Op{Kind: OpCall, Dst: v1.Name, Fn: "extern"})
		case 8: // free (rare): later ops on v1 become compute
			f.Ops = append(f.Ops, Op{Kind: OpFree, Dst: v1.Name})
			freed[v1.Name] = true
		case 9:
			if next()%4 == 0 {
				// Occasionally exercise the rejection path.
				f.Ops = append(f.Ops, Op{Kind: OpEscape, Dst: v1.Name})
			} else {
				f.Ops = append(f.Ops, Op{Kind: OpCompute})
			}
		}
	}
	if len(f.Ops) == 0 {
		return nil
	}
	return f
}

func cloneFunc(f *Func) *Func {
	c := &Func{Name: f.Name}
	c.Vars = append(c.Vars, f.Vars...)
	c.Ops = append(c.Ops, f.Ops...)
	return c
}

// FuzzPortSemantics is the differential oracle for CopierGen: porting
// a random program (memcpy -> amemcpy + inserted csyncs) and running
// it under adversarially-deferred async semantics must observe and
// leave behind exactly the bytes of the original program run
// synchronously. Any divergence is a missed or misplaced csync.
func FuzzPortSemantics(f *testing.F) {
	f.Add([]byte("\x01\x02\x03\x00\x01\x05\x00\x02\x10\x03\x01\x00\x04"))
	f.Add([]byte{2, 4, 4, 0, 1, 0, 10, 2, 20, 1, 0, 3, 5, 0, 1, 0, 0, 7})
	f.Add([]byte{0, 1, 1, 0, 0, 0, 8, 1, 0, 0, 0, 3, 0, 4, 1, 1, 8, 0, 9, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		orig := decodeFunc(data)
		if orig == nil {
			return
		}
		if err := orig.Validate(); err != nil {
			t.Fatalf("generator produced invalid program: %v\n%v", err, orig.Ops)
		}

		syncIn := NewInterp(orig)
		if err := syncIn.Run(orig, false); err != nil {
			t.Fatalf("sync run failed on generated program: %v", err)
		}

		ported := cloneFunc(orig)
		if err := Port(ported, 1); err != nil {
			if errors.Is(err, ErrPointerEscape) {
				return // correctly rejected; nothing to compare
			}
			t.Fatalf("port failed: %v", err)
		}
		asyncIn := NewInterp(ported)
		if err := asyncIn.Run(ported, true); err != nil {
			t.Fatalf("async run of ported program failed: %v", err)
		}

		if !bytes.Equal(syncIn.Observed, asyncIn.Observed) {
			t.Fatalf("observed outputs diverge\nsync:  %x\nasync: %x\nprogram: %v\nported: %v",
				syncIn.Observed, asyncIn.Observed, orig.Ops, ported.Ops)
		}
		if !bytes.Equal(syncIn.Snapshot(), asyncIn.Snapshot()) {
			t.Fatalf("final memory diverges\nprogram: %v\nported: %v", orig.Ops, ported.Ops)
		}
	})
}

// FuzzPortIdempotent checks structural invariants of the passes on any
// portable program: no memcpy at/above threshold survives, every
// amemcpy precedes its first covering csync, and porting an already
// ported program inserts nothing new.
func FuzzPortIdempotent(f *testing.F) {
	f.Add([]byte{1, 3, 3, 0, 0, 0, 16, 0, 8, 3, 0, 0, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		orig := decodeFunc(data)
		if orig == nil {
			return
		}
		ported := cloneFunc(orig)
		if err := Port(ported, 1); err != nil {
			return
		}
		if n := CountKind(ported, OpCopy); n != 0 {
			t.Fatalf("%d memcpys survived porting with minSize=1", n)
		}
		again := cloneFunc(ported)
		if err := InsertCsyncs(again); err != nil {
			t.Fatalf("re-inserting csyncs failed: %v", err)
		}
		if len(again.Ops) != len(ported.Ops) {
			t.Fatalf("csync insertion not idempotent: %d -> %d ops",
				len(ported.Ops), len(again.Ops))
		}
	})
}
