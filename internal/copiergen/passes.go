package copiergen

import (
	"errors"
	"fmt"
	"sort"
)

// ErrPointerEscape marks programs CopierGen cannot port (§5.1.3:
// pointer passing is future work).
var ErrPointerEscape = errors.New("copiergen: buffer address escapes analysis")

// ConvertCopies replaces every memcpy at or above minSize with
// amemcpy — the first CopierGen pass. It rejects functions where a
// tracked buffer's address escapes.
func ConvertCopies(f *Func, minSize int) error {
	if err := f.Validate(); err != nil {
		return err
	}
	for _, op := range f.Ops {
		if op.Kind == OpEscape {
			return fmt.Errorf("%w: %q", ErrPointerEscape, op.Dst)
		}
	}
	for i := range f.Ops {
		if f.Ops[i].Kind == OpCopy && f.Ops[i].Len >= minSize {
			f.Ops[i].Kind = OpACopy
		}
	}
	return nil
}

// span is a half-open byte interval [lo, hi) in destination
// coordinates.
type span struct{ lo, hi int }

// pendingCopy tracks an un-synced amemcpy during the dataflow walk.
type pendingCopy struct {
	opIdx int
	dst   string
	src   string
	dOff  int
	sOff  int
	n     int
	// covered holds destination sub-ranges already protected by a
	// csync — inserted by this pass or already present in the input —
	// kept sorted and disjoint. A range is only re-synced where a gap
	// remains, which makes the pass idempotent and lets it compose
	// with hand-written csyncs (§5.1 mixed manual/automated porting).
	covered []span
}

// cover marks [lo, hi), clamped to the copy's destination range, as
// csync-protected.
func (pc *pendingCopy) cover(lo, hi int) {
	if lo < pc.dOff {
		lo = pc.dOff
	}
	if e := pc.dOff + pc.n; hi > e {
		hi = e
	}
	if hi <= lo {
		return
	}
	spans := append(pc.covered, span{lo, hi})
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	merged := spans[:1]
	for _, s := range spans[1:] {
		last := &merged[len(merged)-1]
		if s.lo <= last.hi {
			if s.hi > last.hi {
				last.hi = s.hi
			}
			continue
		}
		merged = append(merged, s)
	}
	pc.covered = merged
}

// gaps returns the sub-ranges of [lo, hi) not yet covered.
func (pc *pendingCopy) gaps(lo, hi int) []span {
	var out []span
	cur := lo
	for _, s := range pc.covered {
		if s.hi <= cur {
			continue
		}
		if s.lo >= hi {
			break
		}
		if s.lo > cur {
			out = append(out, span{cur, s.lo})
		}
		cur = s.hi
		if cur >= hi {
			return out
		}
	}
	if cur < hi {
		out = append(out, span{cur, hi})
	}
	return out
}

// fullySynced reports whether every destination byte is covered.
func (pc *pendingCopy) fullySynced() bool {
	return len(pc.gaps(pc.dOff, pc.dOff+pc.n)) == 0
}

// InsertCsyncs inserts csync before the first access to memory
// affected by a prior amemcpy, following the §5.1 guidelines:
// (1) before reading/writing the destination and before writing the
// source, (2) before frees, (3) before passing the buffer to an
// external function. The inserted csync covers exactly the
// overlapping range (reads/writes) or the whole pending copy (calls,
// frees, source writes).
func InsertCsyncs(f *Func) error {
	if err := f.Validate(); err != nil {
		return err
	}
	var pending []pendingCopy
	var out []Op

	overlap := func(aOff, aLen, bOff, bLen int) (int, int, bool) {
		lo := aOff
		if bOff > lo {
			lo = bOff
		}
		hi := aOff + aLen
		if e := bOff + bLen; e < hi {
			hi = e
		}
		if hi <= lo {
			return 0, 0, false
		}
		return lo, hi - lo, true
	}

	// syncFor emits the csyncs needed before accessing [off, off+n) of
	// variable v with the given intent, skipping ranges a previous
	// csync already protects.
	syncFor := func(v string, off, n int, write, wholeVar bool) {
		remaining := pending[:0]
		for i := range pending {
			pc := &pending[i]
			var lo, hi int
			need := false
			if pc.dst == v {
				if wholeVar {
					lo, hi, need = pc.dOff, pc.dOff+pc.n, true
				} else if l, ln, ok := overlap(pc.dOff, pc.n, off, n); ok {
					lo, hi, need = l, l+ln, true
				}
			}
			if !need && write && pc.src == v {
				// Writing the source: sync the corresponding dst
				// range (appendix transformation rule 4).
				if wholeVar {
					lo, hi, need = pc.dOff, pc.dOff+pc.n, true
				} else if l, ln, ok := overlap(pc.sOff, pc.n, off, n); ok {
					lo = pc.dOff + (l - pc.sOff)
					hi = lo + ln
					need = true
				}
			}
			if need {
				for _, g := range pc.gaps(lo, hi) {
					out = append(out, Op{Kind: OpCsync, Dst: pc.dst, DstOff: g.lo, Len: g.hi - g.lo})
				}
				pc.cover(lo, hi)
			}
			if !pc.fullySynced() {
				remaining = append(remaining, *pc)
			}
		}
		pending = remaining
	}

	for i, op := range f.Ops {
		switch op.Kind {
		case OpACopy:
			// The async copy itself does not count as an access
			// (appendix: "amemcpy does not count as a read or write
			// access") — but overlapping an EARLIER pending copy's
			// ranges is handled by the service's dependency tracking,
			// so no csync is needed here.
			pending = append(pending, pendingCopy{
				opIdx: i, dst: op.Dst, src: op.Src,
				dOff: op.DstOff, sOff: op.SrcOff, n: op.Len,
			})
			out = append(out, op)
		case OpCsync:
			// An existing csync — hand-written, or inserted by a prior
			// run of this pass — already protects its range: account it
			// so later accesses do not trigger duplicates.
			remaining := pending[:0]
			for j := range pending {
				pc := &pending[j]
				if pc.dst == op.Dst {
					pc.cover(op.DstOff, op.DstOff+op.Len)
				}
				if !pc.fullySynced() {
					remaining = append(remaining, *pc)
				}
			}
			pending = remaining
			out = append(out, op)
		case OpLoad:
			syncFor(op.Src, op.SrcOff, op.Len, false, false)
			out = append(out, op)
		case OpStore:
			syncFor(op.Dst, op.DstOff, op.Len, true, false)
			out = append(out, op)
		case OpCopy:
			// A residual sync memcpy reads its source and writes its
			// destination.
			syncFor(op.Src, op.SrcOff, op.Len, false, false)
			syncFor(op.Dst, op.DstOff, op.Len, true, false)
			out = append(out, op)
		case OpCall:
			// External functions may touch the whole buffer
			// (guideline 3).
			syncFor(op.Dst, 0, 0, true, true)
			out = append(out, op)
		case OpFree:
			// Guideline 2: sync before dst/src buffers are freed.
			syncFor(op.Dst, 0, 0, true, true)
			out = append(out, op)
		default:
			out = append(out, op)
		}
	}
	f.Ops = out
	return nil
}

// Port runs both passes: convert + insert.
func Port(f *Func, minSize int) error {
	if err := ConvertCopies(f, minSize); err != nil {
		return err
	}
	return InsertCsyncs(f)
}

// CountKind tallies operations of one kind (test/reporting helper).
func CountKind(f *Func, k OpKind) int {
	n := 0
	for _, op := range f.Ops {
		if op.Kind == k {
			n++
		}
	}
	return n
}
