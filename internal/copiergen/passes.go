package copiergen

import (
	"errors"
	"fmt"
)

// ErrPointerEscape marks programs CopierGen cannot port (§5.1.3:
// pointer passing is future work).
var ErrPointerEscape = errors.New("copiergen: buffer address escapes analysis")

// ConvertCopies replaces every memcpy at or above minSize with
// amemcpy — the first CopierGen pass. It rejects functions where a
// tracked buffer's address escapes.
func ConvertCopies(f *Func, minSize int) error {
	if err := f.Validate(); err != nil {
		return err
	}
	for _, op := range f.Ops {
		if op.Kind == OpEscape {
			return fmt.Errorf("%w: %q", ErrPointerEscape, op.Dst)
		}
	}
	for i := range f.Ops {
		if f.Ops[i].Kind == OpCopy && f.Ops[i].Len >= minSize {
			f.Ops[i].Kind = OpACopy
		}
	}
	return nil
}

// pendingCopy tracks an un-synced amemcpy during the dataflow walk.
type pendingCopy struct {
	opIdx int
	dst   string
	src   string
	dOff  int
	sOff  int
	n     int
	// synced marks byte offsets (relative to dOff) already covered
	// by an inserted csync. Tracking is interval-free: we record the
	// covered prefix plus full-sync, which suffices for the
	// straight-line pass.
	fullySynced bool
}

// InsertCsyncs inserts csync before the first access to memory
// affected by a prior amemcpy, following the §5.1 guidelines:
// (1) before reading/writing the destination and before writing the
// source, (2) before frees, (3) before passing the buffer to an
// external function. The inserted csync covers exactly the
// overlapping range (reads/writes) or the whole pending copy (calls,
// frees, source writes).
func InsertCsyncs(f *Func) error {
	if err := f.Validate(); err != nil {
		return err
	}
	var pending []pendingCopy
	var out []Op

	overlap := func(aOff, aLen, bOff, bLen int) (int, int, bool) {
		lo := aOff
		if bOff > lo {
			lo = bOff
		}
		hi := aOff + aLen
		if e := bOff + bLen; e < hi {
			hi = e
		}
		if hi <= lo {
			return 0, 0, false
		}
		return lo, hi - lo, true
	}

	// syncFor emits csyncs needed before accessing [off, off+n) of
	// variable v with the given intent.
	syncFor := func(v string, off, n int, write, wholeVar bool) {
		remaining := pending[:0]
		for _, pc := range pending {
			emit := false
			var csOff, csLen int
			if pc.dst == v {
				if wholeVar {
					emit, csOff, csLen = true, pc.dOff, pc.n
				} else if lo, ln, ok := overlap(pc.dOff, pc.n, off, n); ok {
					emit, csOff, csLen = true, lo, ln
				}
			}
			if !emit && write && pc.src == v {
				// Writing the source: sync the corresponding dst
				// range (appendix transformation rule 4).
				if wholeVar {
					emit, csOff, csLen = true, pc.dOff, pc.n
				} else if lo, ln, ok := overlap(pc.sOff, pc.n, off, n); ok {
					emit = true
					csOff = pc.dOff + (lo - pc.sOff)
					csLen = ln
				}
			}
			if emit {
				out = append(out, Op{Kind: OpCsync, Dst: pc.dst, DstOff: csOff, Len: csLen})
				if csOff <= pc.dOff && csLen >= pc.n {
					pc.fullySynced = true
				}
			}
			if !pc.fullySynced {
				remaining = append(remaining, pc)
			}
		}
		pending = remaining
	}

	for i, op := range f.Ops {
		switch op.Kind {
		case OpACopy:
			// The async copy itself does not count as an access
			// (appendix: "amemcpy does not count as a read or write
			// access") — but overlapping an EARLIER pending copy's
			// ranges is handled by the service's dependency tracking,
			// so no csync is needed here.
			pending = append(pending, pendingCopy{
				opIdx: i, dst: op.Dst, src: op.Src,
				dOff: op.DstOff, sOff: op.SrcOff, n: op.Len,
			})
			out = append(out, op)
		case OpLoad:
			syncFor(op.Src, op.SrcOff, op.Len, false, false)
			out = append(out, op)
		case OpStore:
			syncFor(op.Dst, op.DstOff, op.Len, true, false)
			out = append(out, op)
		case OpCopy:
			// A residual sync memcpy reads its source and writes its
			// destination.
			syncFor(op.Src, op.SrcOff, op.Len, false, false)
			syncFor(op.Dst, op.DstOff, op.Len, true, false)
			out = append(out, op)
		case OpCall:
			// External functions may touch the whole buffer
			// (guideline 3).
			syncFor(op.Dst, 0, 0, true, true)
			out = append(out, op)
		case OpFree:
			// Guideline 2: sync before dst/src buffers are freed.
			syncFor(op.Dst, 0, 0, true, true)
			out = append(out, op)
		default:
			out = append(out, op)
		}
	}
	f.Ops = out
	return nil
}

// Port runs both passes: convert + insert.
func Port(f *Func, minSize int) error {
	if err := ConvertCopies(f, minSize); err != nil {
		return err
	}
	return InsertCsyncs(f)
}

// CountKind tallies operations of one kind (test/reporting helper).
func CountKind(f *Func, k OpKind) int {
	n := 0
	for _, op := range f.Ops {
		if op.Kind == k {
			n++
		}
	}
	return n
}
