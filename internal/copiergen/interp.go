package copiergen

import (
	"fmt"
	"sort"
)

// Interp executes a mini-IR function on concrete memory, under either
// synchronous semantics (memcpy runs immediately) or asynchronous
// semantics (amemcpy is deferred until a covering csync arrives, or
// until the end of the program — modelling the service completing
// lazily and adversarially late). Comparing the two validates
// CopierGen's csync insertion: a correctly ported program must be
// observationally equal to the original under the *worst-case*
// completion schedule.
type Interp struct {
	mem   map[string][]byte
	freed map[string]bool
	// deferred amemcpys not yet performed, in program order.
	deferred []deferredCopy
	// Loads observed (the program's outputs).
	Observed []byte
}

type deferredCopy struct {
	dst, src   string
	dOff, sOff int
	n          int
	// data snapshot is NOT taken: the async service reads the source
	// at copy time; correct programs must not modify it before csync.
	done bool
}

// NewInterp allocates memory for the function's variables with a
// deterministic fill.
func NewInterp(f *Func) *Interp {
	in := &Interp{mem: make(map[string][]byte), freed: make(map[string]bool)}
	for vi, v := range f.Vars {
		buf := make([]byte, v.Size)
		for i := range buf {
			buf[i] = byte(i*7 + vi*31 + 3)
		}
		in.mem[v.Name] = buf
	}
	return in
}

// Run executes the function. async selects deferred-copy semantics.
func (in *Interp) Run(f *Func, async bool) error {
	for i, op := range f.Ops {
		if err := in.step(op, async); err != nil {
			return fmt.Errorf("op %d (%v): %w", i, op, err)
		}
	}
	// Program end: the service eventually completes everything.
	in.flush(nil, 0, 0)
	return nil
}

func (in *Interp) step(op Op, async bool) error {
	switch op.Kind {
	case OpCopy:
		in.copyNow(op.Dst, op.DstOff, op.Src, op.SrcOff, op.Len)
	case OpACopy:
		if !async {
			in.copyNow(op.Dst, op.DstOff, op.Src, op.SrcOff, op.Len)
			return nil
		}
		in.deferred = append(in.deferred, deferredCopy{
			dst: op.Dst, src: op.Src, dOff: op.DstOff, sOff: op.SrcOff, n: op.Len,
		})
	case OpCsync:
		in.flush(&op.Dst, op.DstOff, op.Len)
	case OpLoad:
		if in.freed[op.Src] {
			return fmt.Errorf("load of freed %q", op.Src)
		}
		in.Observed = append(in.Observed, in.mem[op.Src][op.SrcOff:op.SrcOff+op.Len]...)
	case OpStore:
		if in.freed[op.Dst] {
			return fmt.Errorf("store to freed %q", op.Dst)
		}
		buf := in.mem[op.Dst]
		for i := 0; i < op.Len; i++ {
			buf[op.DstOff+i] = byte(op.DstOff + i + 101)
		}
	case OpCall:
		// The external function reads the whole buffer.
		if in.freed[op.Dst] {
			return fmt.Errorf("call with freed %q", op.Dst)
		}
		in.Observed = append(in.Observed, in.mem[op.Dst]...)
	case OpFree:
		in.freed[op.Dst] = true
	case OpCompute:
	}
	return nil
}

// copyNow moves bytes immediately, resolving any deferred copies the
// read depends on first (the service's dependency tracking).
func (in *Interp) copyNow(dst string, dOff int, src string, sOff, n int) {
	// Reads of a deferred destination see stale bytes; the service
	// would order them — model by flushing copies targeting the
	// source range first.
	in.flush(&src, sOff, n)
	copy(in.mem[dst][dOff:dOff+n], in.mem[src][sOff:sOff+n])
}

// flush performs deferred copies covering the given range (nil = all),
// in order, cascading dependencies.
func (in *Interp) flush(v *string, off, n int) {
	for i := range in.deferred {
		dc := &in.deferred[i]
		if dc.done {
			continue
		}
		if v != nil {
			lo := off
			hi := off + n
			dlo, dhi := dc.dOff, dc.dOff+dc.n
			if dc.dst != *v || dhi <= lo || hi <= dlo {
				continue
			}
		}
		in.exec(i)
	}
}

// exec performs deferred copy i after its dependencies: earlier
// copies writing its source (flow) and earlier copies reading its
// destination (anti-dependency — the service's §4.2.2 rule when a
// Sync Task promotes a later task).
func (in *Interp) exec(idx int) {
	dc := &in.deferred[idx]
	if dc.done {
		return
	}
	// Guard against (impossible in valid programs) cycles.
	dc.done = true
	for i := 0; i < idx; i++ {
		e := &in.deferred[i]
		if e.done {
			continue
		}
		writesOurSrc := e.dst == dc.src && e.dOff < dc.sOff+dc.n && dc.sOff < e.dOff+e.n
		readsOurDst := e.src == dc.dst && e.sOff < dc.dOff+dc.n && dc.dOff < e.sOff+e.n
		writesOurDst := e.dst == dc.dst && e.dOff < dc.dOff+dc.n && dc.dOff < e.dOff+e.n
		if writesOurSrc || readsOurDst || writesOurDst {
			in.exec(i)
		}
	}
	copy(in.mem[dc.dst][dc.dOff:dc.dOff+dc.n], in.mem[dc.src][dc.sOff:dc.sOff+dc.n])
}

// Snapshot returns a stable dump of all live memory.
func (in *Interp) Snapshot() []byte {
	var names []string
	for name := range in.mem {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []byte
	for _, name := range names {
		if in.freed[name] {
			continue
		}
		out = append(out, in.mem[name]...)
	}
	return out
}
