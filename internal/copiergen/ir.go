// Package copiergen implements CopierGen (§5.1.3): compiler passes
// that automate porting programs to Copier by replacing memcpy calls
// with amemcpy and inserting csync before the first access to
// affected memory.
//
// The real system works on LLVM/MLIR IR; this package defines a small
// SSA-flavored mini-IR with the properties the paper relies on —
// variables are explicit and data access is constrained to a few
// operations (load/store/copy/call) — and implements the same two
// passes. Like the paper, it handles the basic cases (arrays, direct
// buffer access) and rejects programs where pointers escape, which
// remains future work.
package copiergen

import "fmt"

// OpKind enumerates mini-IR operations.
type OpKind int

const (
	// OpLoad reads Len bytes from Src+SrcOff into a register.
	OpLoad OpKind = iota
	// OpStore writes Len bytes to Dst+DstOff.
	OpStore
	// OpCopy is memcpy(Dst+DstOff, Src+SrcOff, Len).
	OpCopy
	// OpACopy is amemcpy(...) — produced by the ConvertCopies pass.
	OpACopy
	// OpCsync is csync(Dst+DstOff, Len) — produced by InsertCsyncs.
	OpCsync
	// OpCall passes a buffer to an external function (opaque access
	// to the whole variable, §5.1 guideline 3).
	OpCall
	// OpFree releases a buffer (guideline 2).
	OpFree
	// OpEscape takes the address of a buffer into a pointer the IR
	// cannot track — programs containing it are rejected (paper:
	// "leave handling complex issues (e.g., pointer passing) as
	// future work").
	OpEscape
	// OpCompute is opaque computation touching no tracked memory.
	OpCompute
)

func (k OpKind) String() string {
	switch k {
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpCopy:
		return "memcpy"
	case OpACopy:
		return "amemcpy"
	case OpCsync:
		return "csync"
	case OpCall:
		return "call"
	case OpFree:
		return "free"
	case OpEscape:
		return "escape"
	case OpCompute:
		return "compute"
	}
	return "op?"
}

// Var is a tracked buffer variable.
type Var struct {
	Name string
	Size int
}

// Op is one mini-IR operation.
type Op struct {
	Kind   OpKind
	Dst    string // variable name (dst side)
	Src    string // variable name (src side)
	DstOff int
	SrcOff int
	Len    int
	// Fn names the external function for OpCall.
	Fn string
}

func (o Op) String() string {
	switch o.Kind {
	case OpCopy, OpACopy:
		return fmt.Sprintf("%v %s+%d <- %s+%d, %d", o.Kind, o.Dst, o.DstOff, o.Src, o.SrcOff, o.Len)
	case OpLoad:
		return fmt.Sprintf("load %s+%d, %d", o.Src, o.SrcOff, o.Len)
	case OpStore:
		return fmt.Sprintf("store %s+%d, %d", o.Dst, o.DstOff, o.Len)
	case OpCsync:
		return fmt.Sprintf("csync %s+%d, %d", o.Dst, o.DstOff, o.Len)
	case OpCall:
		return fmt.Sprintf("call %s(%s)", o.Fn, o.Dst)
	case OpFree:
		return fmt.Sprintf("free %s", o.Dst)
	case OpEscape:
		return fmt.Sprintf("escape %s", o.Dst)
	}
	return o.Kind.String()
}

// Func is a straight-line mini-IR function (the paper's passes also
// work per basic block).
type Func struct {
	Name string
	Vars []Var
	Ops  []Op
}

// VarSize returns a variable's size, or -1 if unknown.
func (f *Func) VarSize(name string) int {
	for _, v := range f.Vars {
		if v.Name == name {
			return v.Size
		}
	}
	return -1
}

// Validate checks variable references and bounds.
func (f *Func) Validate() error {
	for i, op := range f.Ops {
		check := func(name string, off, n int) error {
			if name == "" {
				return nil
			}
			sz := f.VarSize(name)
			if sz < 0 {
				return fmt.Errorf("op %d: unknown variable %q", i, name)
			}
			if off < 0 || n < 0 || off+n > sz {
				return fmt.Errorf("op %d: range [%d,%d) outside %q (%d bytes)", i, off, off+n, name, sz)
			}
			return nil
		}
		switch op.Kind {
		case OpCopy, OpACopy:
			if err := check(op.Dst, op.DstOff, op.Len); err != nil {
				return err
			}
			if err := check(op.Src, op.SrcOff, op.Len); err != nil {
				return err
			}
		case OpLoad:
			if err := check(op.Src, op.SrcOff, op.Len); err != nil {
				return err
			}
		case OpStore, OpCsync:
			if err := check(op.Dst, op.DstOff, op.Len); err != nil {
				return err
			}
		case OpCall, OpFree, OpEscape:
			if f.VarSize(op.Dst) < 0 {
				return fmt.Errorf("op %d: unknown variable %q", i, op.Dst)
			}
		}
	}
	return nil
}
