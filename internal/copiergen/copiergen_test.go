package copiergen

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func basicFunc() *Func {
	return &Func{
		Name: "copyUse",
		Vars: []Var{{"src", 8192}, {"dst", 8192}, {"obj", 1024}},
		Ops: []Op{
			{Kind: OpCopy, Dst: "dst", Src: "src", Len: 8192},
			{Kind: OpCompute},
			{Kind: OpLoad, Src: "dst", SrcOff: 0, Len: 8},
			{Kind: OpCopy, Dst: "obj", Src: "dst", SrcOff: 100, Len: 512},
			{Kind: OpFree, Dst: "src"},
		},
	}
}

func TestConvertCopies(t *testing.T) {
	f := basicFunc()
	if err := ConvertCopies(f, 1024); err != nil {
		t.Fatal(err)
	}
	// The 8KB copy converts; the 512B one stays sync (below minSize).
	if CountKind(f, OpACopy) != 1 || CountKind(f, OpCopy) != 1 {
		t.Fatalf("acopy=%d copy=%d", CountKind(f, OpACopy), CountKind(f, OpCopy))
	}
}

func TestEscapeRejected(t *testing.T) {
	f := &Func{
		Vars: []Var{{"b", 4096}},
		Ops:  []Op{{Kind: OpEscape, Dst: "b"}, {Kind: OpCopy, Dst: "b", Src: "b", Len: 0}},
	}
	if err := ConvertCopies(f, 1); !errors.Is(err, ErrPointerEscape) {
		t.Fatalf("err = %v", err)
	}
}

func TestInsertCsyncBeforeLoadAndFree(t *testing.T) {
	f := basicFunc()
	if err := Port(f, 1024); err != nil {
		t.Fatal(err)
	}
	// Expect csyncs: before the dst load, before the dst-sourced
	// copy, and before freeing src (the source of a pending copy).
	if got := CountKind(f, OpCsync); got < 2 {
		t.Fatalf("csyncs = %d, want >= 2\n%v", got, f.Ops)
	}
	// The first csync must precede the first load.
	for _, op := range f.Ops {
		if op.Kind == OpLoad {
			t.Fatal("load reached before any csync")
		}
		if op.Kind == OpCsync {
			break
		}
	}
}

func TestPortedProgramObservationallyEqual(t *testing.T) {
	orig := basicFunc()
	ported := basicFunc()
	if err := Port(ported, 1024); err != nil {
		t.Fatal(err)
	}
	a := NewInterp(orig)
	if err := a.Run(orig, false); err != nil {
		t.Fatal(err)
	}
	b := NewInterp(ported)
	if err := b.Run(ported, true); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Observed, b.Observed) {
		t.Fatal("observations differ")
	}
	if !bytes.Equal(a.Snapshot(), b.Snapshot()) {
		t.Fatal("final memory differs")
	}
}

// Omitting the pass (no csyncs) must be observable under adversarial
// completion — proving the interpreter actually defers.
func TestUnportedAsyncDiverges(t *testing.T) {
	f := basicFunc()
	f.Ops[0].Kind = OpACopy // convert without inserting csyncs
	f.Ops[3].Kind = OpACopy
	a := NewInterp(basicFunc())
	if err := a.Run(basicFunc(), false); err != nil {
		t.Fatal(err)
	}
	b := NewInterp(f)
	if err := b.Run(f, true); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Observed, b.Observed) {
		t.Fatal("deferred semantics were not adversarial — bug in the interpreter")
	}
}

// Property: random straight-line programs, once ported, behave
// identically under sync and adversarial-async semantics.
func TestPortRefinementProperty(t *testing.T) {
	vars := []Var{{"a", 4096}, {"b", 4096}, {"c", 4096}, {"d", 2048}}
	gen := func(rnd *rand.Rand) *Func {
		f := &Func{Name: "rand", Vars: vars}
		nOps := 4 + rnd.Intn(12)
		for i := 0; i < nOps; i++ {
			pick := func() (string, int) {
				v := vars[rnd.Intn(len(vars))]
				return v.Name, v.Size
			}
			switch rnd.Intn(6) {
			case 0, 1: // copy between distinct vars
				dn, dsz := pick()
				sn, ssz := pick()
				if dn == sn {
					continue
				}
				max := dsz
				if ssz < max {
					max = ssz
				}
				n := 256 + rnd.Intn(max-256)
				off := rnd.Intn(max - n + 1)
				f.Ops = append(f.Ops, Op{Kind: OpCopy, Dst: dn, DstOff: off % (dsz - n + 1), Src: sn, SrcOff: off % (ssz - n + 1), Len: n})
			case 2: // load
				vn, sz := pick()
				n := 1 + rnd.Intn(64)
				f.Ops = append(f.Ops, Op{Kind: OpLoad, Src: vn, SrcOff: rnd.Intn(sz - n), Len: n})
			case 3: // store
				vn, sz := pick()
				n := 1 + rnd.Intn(64)
				f.Ops = append(f.Ops, Op{Kind: OpStore, Dst: vn, DstOff: rnd.Intn(sz - n), Len: n})
			case 4: // call
				vn, _ := pick()
				f.Ops = append(f.Ops, Op{Kind: OpCall, Dst: vn, Fn: "ext"})
			case 5:
				f.Ops = append(f.Ops, Op{Kind: OpCompute})
			}
		}
		return f
	}
	for trial := 0; trial < 200; trial++ {
		rnd := rand.New(rand.NewSource(int64(trial)))
		f := gen(rnd)
		orig := &Func{Name: f.Name, Vars: f.Vars, Ops: append([]Op(nil), f.Ops...)}
		if err := Port(f, 512); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		a := NewInterp(orig)
		if err := a.Run(orig, false); err != nil {
			t.Fatalf("trial %d sync: %v", trial, err)
		}
		b := NewInterp(f)
		if err := b.Run(f, true); err != nil {
			t.Fatalf("trial %d async: %v", trial, err)
		}
		if !bytes.Equal(a.Observed, b.Observed) {
			t.Fatalf("trial %d: observations diverge\nops: %v", trial, f.Ops)
		}
		if !bytes.Equal(a.Snapshot(), b.Snapshot()) {
			t.Fatalf("trial %d: memory diverges\nops: %v", trial, f.Ops)
		}
	}
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	f := &Func{Vars: []Var{{"a", 128}}, Ops: []Op{{Kind: OpLoad, Src: "zzz", Len: 1}}}
	if err := f.Validate(); err == nil {
		t.Fatal("unknown var accepted")
	}
	f = &Func{Vars: []Var{{"a", 128}}, Ops: []Op{{Kind: OpStore, Dst: "a", DstOff: 120, Len: 64}}}
	if err := f.Validate(); err == nil {
		t.Fatal("out-of-bounds accepted")
	}
}

func TestOpStrings(t *testing.T) {
	for k := OpLoad; k <= OpCompute; k++ {
		if k.String() == "op?" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
}
