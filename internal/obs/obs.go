// Package obs is the structured observability layer: a typed event
// bus recording where cycles go — queue residency, unit occupancy,
// Copy-Use windows — across every layer of the simulated stack.
//
// Design constraints (all load-bearing for the experiments):
//
//   - Typed, not printf: each emission is a fixed-size Event keyed on
//     virtual time, so exporters and tests consume a schema instead of
//     parsing trace lines.
//   - Zero allocation on the hot path: events land in a preallocated
//     ring buffer; labels are static interned strings; aggregate
//     updates (histograms, unit busy accounting) touch fixed arrays
//     and pre-registered tracks only.
//   - Off by default, near-zero cost when disabled: every emission
//     site guards on a nil *Recorder — one pointer load and branch.
//   - Deterministic: recording is driven entirely by the simulation's
//     virtual clock and event order, and the exporters iterate rings
//     and registration-ordered slices (never maps), so two runs of the
//     same experiment produce byte-identical exports.
//
// The package sits below internal/sim (it imports only the standard
// library); sim.Env carries the recorder and the higher layers — core,
// hw, kernel — fetch it from their environment and emit.
package obs

import "math/bits"

// EventKind enumerates the typed events. The first seven are the
// schema's backbone; the rest refine individual layers.
type EventKind uint8

const (
	// EvTaskSubmit: a Copy Task entered a CSH queue.
	// A = task ID, B = task length in bytes.
	EvTaskSubmit EventKind = iota
	// EvTaskDispatch: the service dispatcher started executing a task
	// window (first dispatch only). A = task ID, B = queue residency
	// in cycles (admission → dispatch).
	EvTaskDispatch
	// EvSegmentDone: one segment-aligned piece landed in the
	// destination. A = task ID, B = piece bytes.
	EvSegmentDone
	// EvTaskComplete: a task fully finished (handler delegated).
	// A = task ID, B = latency in cycles (admission → completion).
	EvTaskComplete
	// EvQueueDepthSample: a CSH backlog sample at admission time.
	// A = client ID, B = pending task count.
	EvQueueDepthSample
	// EvUnitBusyInterval: a copy unit (AVX/ERMS/DMA) was busy for
	// [T, T+Dur). A = bytes moved.
	EvUnitBusyInterval
	// EvTrapReturn: one user→kernel→user syscall window [T, T+Dur).
	EvTrapReturn

	// EvProcStart / EvProcEnd: simulation process lifecycle (sim
	// layer).
	EvProcStart
	EvProcEnd
	// EvThreadRun: a kernel thread held a core for [T, T+Dur)
	// (scheduler run span; preemption ends the span).
	EvThreadRun
	// EvDMASubmit: a descriptor was enqueued on the DMA channel.
	// A = bytes.
	EvDMASubmit
	// EvATCacheHit / EvATCacheMiss: one page translation through the
	// Address Transfer Cache.
	EvATCacheHit
	EvATCacheMiss

	// EvFaultInjected: the fault layer perturbed one operation.
	// A = payload bytes affected, B = fault code (1 = fail,
	// 2 = stall, 3 = fail+stall).
	EvFaultInjected
	// EvTaskRetry: a task's failed window was rescheduled with
	// backoff. A = task ID, B = retry number (1-based).
	EvTaskRetry
	// EvTaskFailed: a task exhausted retries (or hit a permanent
	// fault) and completed with an error. A = task ID.
	EvTaskFailed
	// EvEngineFallback: DMA-eligible work was forced onto the CPU
	// engines because the DMA channel is faulted/cooling down.
	// A = task ID, B = bytes diverted.
	EvEngineFallback
	// EvClientTeardown: a dead client's state was reclaimed by the
	// service. A = client ID, B = tasks reclaimed (queued + pending).
	EvClientTeardown

	// EvTaskShed: admission control or the dispatcher dropped a task
	// with a definite error instead of copying it. A = task ID,
	// B = reason (1 = queue overload, 2 = deadline passed,
	// 3 = brownout priority shed, 4 = retry budget exhausted).
	EvTaskShed
	// EvEngineHealth: a DMA engine's health state changed.
	// A = engine (node) index, B = new state (0 = healthy,
	// 1 = degraded, 2 = quarantined, 3 = dead).
	EvEngineHealth
	// EvBrownout: the service brownout controller toggled.
	// A = 1 entering / 0 exiting, B = service backlog bytes at the
	// toggle.
	EvBrownout

	numEventKinds
)

var kindNames = [numEventKinds]string{
	"TaskSubmit", "TaskDispatch", "SegmentDone", "TaskComplete",
	"QueueDepthSample", "UnitBusyInterval", "TrapReturn",
	"ProcStart", "ProcEnd", "ThreadRun", "DMASubmit",
	"ATCacheHit", "ATCacheMiss",
	"FaultInjected", "TaskRetry", "TaskFailed", "EngineFallback",
	"ClientTeardown",
	"TaskShed", "EngineHealth", "Brownout",
}

func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "EventKind?"
}

// Layer tags which of the four timing-owning layers emitted an event.
type Layer uint8

const (
	LayerSim Layer = iota
	LayerCore
	LayerHW
	LayerKernel

	numLayers
)

var layerNames = [numLayers]string{"sim", "core", "hw", "kernel"}

func (l Layer) String() string {
	if int(l) < len(layerNames) {
		return layerNames[l]
	}
	return "layer?"
}

// Event is one typed trace record. T and Dur are virtual time in CPU
// cycles; Track names the timeline row (a unit, a core, a queue);
// Name labels the event on that row. Track and Name must be static or
// interned strings — emission stores them by reference.
type Event struct {
	T     int64
	Dur   int64
	Kind  EventKind
	Layer Layer
	Track string
	Name  string
	A, B  int64
}

// span reports whether the event renders as a duration slice.
func (e *Event) span() bool {
	switch e.Kind {
	case EvUnitBusyInterval, EvThreadRun, EvTrapReturn:
		return true
	}
	return false
}

// counter reports whether the event renders as a counter sample.
func (e *Event) counter() bool { return e.Kind == EvQueueDepthSample }

// Histogram is a fixed-bucket latency histogram: bucket i counts
// values v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). Fixed
// buckets keep Observe allocation-free and exports deterministic;
// quantiles report the bucket's inclusive upper bound.
type Histogram struct {
	buckets [65]int64
	count   int64
	sum     int64
	max     int64
}

// Observe records one non-negative value.
//
//copier:noalloc
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Merge folds o's observations into h, bucket-wise. Merging per-shard
// histograms in a fixed order is deterministic because the buckets are
// plain sums.
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Max returns the largest observation.
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() int64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / h.count
}

// Quantile returns the inclusive upper bound of the bucket containing
// the q-quantile (0 < q <= 1), or 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, b := range h.buckets {
		cum += b
		if cum >= target {
			if i == 0 {
				return 0
			}
			return (int64(1) << i) - 1
		}
	}
	return h.max
}

// unitStat accumulates busy time for one track.
type unitStat struct {
	track     string
	busy      int64
	intervals int64
	bytes     int64
}

// Recorder is the event sink. A nil *Recorder is a valid, disabled
// recorder: emission sites guard with `if r != nil`. Recorder is not
// safe for concurrent use — inside the discrete-event simulation
// exactly one process runs at a time, which is also what makes its
// output deterministic.
type Recorder struct {
	ring    []Event
	n       uint64 // total events ever emitted
	counts  [numEventKinds]int64
	byLayer [numLayers]int64

	// Aggregate histograms, fed by Emit.
	TaskLatency    Histogram // admission → completion (EvTaskComplete.B)
	QueueResidency Histogram // admission → first dispatch (EvTaskDispatch.B)
	TrapResidency  Histogram // syscall window length (EvTrapReturn.Dur)
	QueueDepth     Histogram // backlog samples (EvQueueDepthSample.B)

	units    []unitStat
	unitIdx  map[string]int
	first    int64
	last     int64
	sawEvent bool
}

// DefaultRingCap bounds recording to this many most-recent events
// unless NewRecorder is told otherwise (~18 MB of events).
const DefaultRingCap = 1 << 18

// NewRecorder returns an enabled recorder keeping the most recent
// ringCap events (0 selects DefaultRingCap).
func NewRecorder(ringCap int) *Recorder {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	return &Recorder{
		ring:    make([]Event, ringCap),
		unitIdx: make(map[string]int),
	}
}

// Emit records one event. The newest events win when the ring wraps;
// aggregate counters and histograms always see every event. The
// annotation covers escape-analysis allocations only: the first
// interval on a fresh track grows r.units / r.unitIdx, which is
// runtime growth, amortized to zero in steady state.
//
//copier:noalloc
func (r *Recorder) Emit(e Event) {
	r.ring[r.n%uint64(len(r.ring))] = e
	r.n++
	r.counts[e.Kind]++
	r.byLayer[e.Layer]++
	if !r.sawEvent || e.T < r.first {
		r.first = e.T
	}
	if end := e.T + e.Dur; end > r.last {
		r.last = end
	}
	r.sawEvent = true
	switch e.Kind {
	case EvTaskComplete:
		r.TaskLatency.Observe(e.B)
	case EvTaskDispatch:
		r.QueueResidency.Observe(e.B)
	case EvTrapReturn:
		r.TrapResidency.Observe(e.Dur)
	case EvQueueDepthSample:
		r.QueueDepth.Observe(e.B)
	case EvUnitBusyInterval, EvThreadRun:
		i, ok := r.unitIdx[e.Track]
		if !ok {
			i = len(r.units)
			r.unitIdx[e.Track] = i
			r.units = append(r.units, unitStat{track: e.Track})
		}
		u := &r.units[i]
		u.busy += e.Dur
		u.intervals++
		if e.Kind == EvUnitBusyInterval {
			u.bytes += e.A // A is bytes moved; for ThreadRun it is a TID
		}
	}
}

// Cap returns the ring capacity in events.
func (r *Recorder) Cap() int { return len(r.ring) }

// Total returns the number of events ever emitted.
func (r *Recorder) Total() uint64 { return r.n }

// Dropped returns how many events the ring discarded (oldest-first).
func (r *Recorder) Dropped() uint64 {
	if r.n <= uint64(len(r.ring)) {
		return 0
	}
	return r.n - uint64(len(r.ring))
}

// CountOf returns how many events of kind k were emitted.
func (r *Recorder) CountOf(k EventKind) int64 { return r.counts[k] }

// LayerCount returns how many events layer l emitted.
func (r *Recorder) LayerCount(l Layer) int64 { return r.byLayer[l] }

// Window returns the [first, last] virtual-time span covered by
// emitted events.
func (r *Recorder) Window() (first, last int64) { return r.first, r.last }

// Events calls fn for each retained event, oldest first.
func (r *Recorder) Events(fn func(e *Event)) {
	if r.n == 0 {
		return
	}
	capU := uint64(len(r.ring))
	start := uint64(0)
	count := r.n
	if r.n > capU {
		start = r.n % capU
		count = capU
	}
	for i := uint64(0); i < count; i++ {
		fn(&r.ring[(start+i)%capU])
	}
}
