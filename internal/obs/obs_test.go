package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	for _, v := range []int64{0, 1, 2, 3, 100, 1000, 1 << 20} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 1<<20 {
		t.Fatalf("max = %d", h.Max())
	}
	// Quantiles report the bucket's inclusive upper bound: the median
	// of {0,1,2,3,100,1000,1M} lands in the [2,3] bucket.
	if q := h.Quantile(0.5); q != 3 {
		t.Fatalf("p50 = %d, want 3", q)
	}
	if q := h.Quantile(1.0); q < 1<<20 {
		t.Fatalf("p100 = %d, want >= 1<<20", q)
	}
	h.Observe(-5) // clamps to 0
	if h.Max() != 1<<20 || h.Count() != 8 {
		t.Fatal("negative observation must clamp, not corrupt")
	}
}

func TestRingWrapKeepsNewestAndAggregatesAll(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{T: int64(i), Kind: EvTaskComplete, Layer: LayerCore,
			Track: "core:tasks", B: int64(i)})
	}
	if r.Total() != 10 || r.Dropped() != 6 {
		t.Fatalf("total=%d dropped=%d", r.Total(), r.Dropped())
	}
	var got []int64
	r.Events(func(e *Event) { got = append(got, e.T) })
	want := []int64{6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("retained %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("retained %v, want %v (oldest first)", got, want)
		}
	}
	// Aggregates saw every event, including the dropped ones.
	if r.TaskLatency.Count() != 10 {
		t.Fatalf("latency count = %d", r.TaskLatency.Count())
	}
	if r.CountOf(EvTaskComplete) != 10 || r.LayerCount(LayerCore) != 10 {
		t.Fatal("counters must not be ring-bounded")
	}
	if first, last := r.Window(); first != 0 || last != 9 {
		t.Fatalf("window = [%d,%d]", first, last)
	}
}

func TestUnitOccupancyAccounting(t *testing.T) {
	r := NewRecorder(16)
	r.Emit(Event{T: 0, Dur: 100, Kind: EvUnitBusyInterval, Layer: LayerHW, Track: "hw:AVX", A: 4096})
	r.Emit(Event{T: 200, Dur: 50, Kind: EvUnitBusyInterval, Layer: LayerHW, Track: "hw:AVX", A: 1024})
	r.Emit(Event{T: 0, Dur: 300, Kind: EvThreadRun, Layer: LayerKernel, Track: "kernel:core0", A: 7})
	if len(r.units) != 2 {
		t.Fatalf("units = %d", len(r.units))
	}
	avx := r.units[0]
	if avx.track != "hw:AVX" || avx.busy != 150 || avx.intervals != 2 || avx.bytes != 5120 {
		t.Fatalf("avx stat = %+v", avx)
	}
	// ThreadRun's A is a TID, not bytes: it must not pollute the bytes
	// column.
	core0 := r.units[1]
	if core0.busy != 300 || core0.bytes != 0 {
		t.Fatalf("core0 stat = %+v", core0)
	}
}

// fill emits one event of every shape the exporters distinguish.
func fill(r *Recorder) {
	r.Emit(Event{T: 5, Kind: EvTaskSubmit, Layer: LayerCore, Track: "core:tasks", Name: "cli", A: 1, B: 4096})
	r.Emit(Event{T: 9, Kind: EvTaskDispatch, Layer: LayerCore, Track: "core:tasks", Name: "cli", A: 1, B: 4})
	r.Emit(Event{T: 12, Kind: EvQueueDepthSample, Layer: LayerCore, Track: "core:backlog", Name: "cli", A: 0, B: 3})
	r.Emit(Event{T: 15, Dur: 80, Kind: EvUnitBusyInterval, Layer: LayerHW, Track: "hw:DMA", Name: "xfer", A: 4096})
	r.Emit(Event{T: 40, Dur: 30, Kind: EvTrapReturn, Layer: LayerKernel, Track: "kernel:syscalls", Name: "recv\"x\"", A: 2})
	r.Emit(Event{T: 99, Kind: EvTaskComplete, Layer: LayerCore, Track: "core:tasks", Name: "cli", A: 1, B: 94})
}

func TestPerfettoExportValidAndDeterministic(t *testing.T) {
	r := NewRecorder(64)
	fill(r)
	var a, b bytes.Buffer
	if err := r.WritePerfetto(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePerfetto(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of one recorder differ")
	}
	if !json.Valid(a.Bytes()) {
		t.Fatalf("invalid JSON:\n%s", a.String())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		phases[e["ph"].(string)]++
	}
	if phases["X"] != 2 || phases["C"] != 1 || phases["i"] != 3 {
		t.Fatalf("phase mix = %v", phases)
	}
	// Track metadata: one thread_name per distinct track + process_name.
	if phases["M"] != 4+1 {
		t.Fatalf("metadata events = %d", phases["M"])
	}
	if !strings.Contains(a.String(), `\"x\"`) {
		t.Fatal("JSON string escaping missing")
	}
}

func TestSummaryDeterministicAndComplete(t *testing.T) {
	r := NewRecorder(64)
	fill(r)
	var a, b bytes.Buffer
	if err := r.WriteSummary(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteSummary(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two summaries of one recorder differ")
	}
	for _, want := range []string{"TaskComplete", "task latency", "trap residency", "hw:DMA", "by layer"} {
		if !strings.Contains(a.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, a.String())
		}
	}
}

func TestEventsEmptyRecorder(t *testing.T) {
	r := NewRecorder(8)
	r.Events(func(e *Event) { t.Fatal("no events expected") })
	var buf bytes.Buffer
	if err := r.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("empty export must still be valid JSON")
	}
}

// BenchmarkEmit quantifies the enabled hot path (the disabled path is
// a nil check at the call site and is covered by the <2% regression
// gate on BenchmarkFig9CopierThroughput).
func BenchmarkEmit(b *testing.B) {
	r := NewRecorder(1 << 12)
	e := Event{T: 1, Dur: 2, Kind: EvUnitBusyInterval, Layer: LayerHW, Track: "hw:AVX", A: 4096}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.T = int64(i)
		r.Emit(e)
	}
}
