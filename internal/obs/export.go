package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// WritePerfetto writes the retained events as Chrome trace_event JSON
// (the JSON Object Format), loadable in Perfetto / chrome://tracing.
//
// Mapping: interval events (UnitBusyInterval, ThreadRun, TrapReturn)
// become complete ("X") slices; QueueDepthSample becomes a counter
// ("C") series; everything else becomes a thread-scoped instant
// ("i"). Tracks map to tids in first-seen order, with thread_name
// metadata so timelines are labeled. Timestamps are virtual cycles
// written as integer "microseconds" — the timeline's unit is cycles,
// not wall time (documented in README.md).
//
// Output is deterministic: events stream in ring order and tids in
// first-appearance order; no map is iterated.
func (r *Recorder) WritePerfetto(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	tids := make(map[string]int)
	var trackOrder []string
	tidOf := func(track string) int {
		if id, ok := tids[track]; ok {
			return id
		}
		id := len(tids) + 1
		tids[track] = id
		trackOrder = append(trackOrder, track)
		return id
	}
	nout := 0
	comma := func() {
		if nout > 0 {
			bw.WriteByte(',')
		}
		nout++
	}
	r.Events(func(e *Event) {
		tid := tidOf(e.Track)
		comma()
		bw.WriteString(`{"name":`)
		writeJSONString(bw, e.Name)
		bw.WriteString(`,"cat":"`)
		bw.WriteString(e.Layer.String())
		bw.WriteString(`","ts":`)
		bw.WriteString(strconv.FormatInt(e.T, 10))
		switch {
		case e.span():
			bw.WriteString(`,"dur":`)
			bw.WriteString(strconv.FormatInt(e.Dur, 10))
			bw.WriteString(`,"ph":"X"`)
		case e.counter():
			bw.WriteString(`,"ph":"C","args":{"depth":`)
			bw.WriteString(strconv.FormatInt(e.B, 10))
			bw.WriteString(`},"id":`)
			bw.WriteString(strconv.FormatInt(e.A, 10))
		default:
			bw.WriteString(`,"ph":"i","s":"t"`)
		}
		bw.WriteString(`,"pid":1,"tid":`)
		bw.WriteString(strconv.Itoa(tid))
		if !e.counter() {
			bw.WriteString(`,"args":{"a":`)
			bw.WriteString(strconv.FormatInt(e.A, 10))
			bw.WriteString(`,"b":`)
			bw.WriteString(strconv.FormatInt(e.B, 10))
			bw.WriteString(`,"kind":"`)
			bw.WriteString(e.Kind.String())
			bw.WriteString(`"}`)
		}
		bw.WriteByte('}')
	})
	// Track labels, in first-seen order.
	for _, track := range trackOrder {
		comma()
		bw.WriteString(`{"name":"thread_name","ph":"M","pid":1,"tid":`)
		bw.WriteString(strconv.Itoa(tids[track]))
		bw.WriteString(`,"args":{"name":`)
		writeJSONString(bw, track)
		bw.WriteString(`}}`)
	}
	comma()
	bw.WriteString(`{"name":"process_name","ph":"M","pid":1,"args":{"name":"copier-sim"}}`)
	if _, err := bw.WriteString(`],"displayTimeUnit":"ms","otherData":{"clock":"virtual-cycles"}}` + "\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// writeJSONString writes s as a JSON string literal, escaping the
// characters our static labels could plausibly contain.
func writeJSONString(bw *bufio.Writer, s string) {
	bw.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			bw.WriteByte('\\')
			bw.WriteByte(c)
		case c < 0x20:
			fmt.Fprintf(bw, `\u%04x`, c)
		default:
			bw.WriteByte(c)
		}
	}
	bw.WriteByte('"')
}

// WriteSummary writes the compact text summary: event counts by kind
// and layer, the latency histograms with p50/p99/p999, and per-unit
// utilization over the observed window. Deterministic: fixed kind
// order, registration-ordered units.
func (r *Recorder) WriteSummary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "== observability summary ==\n")
	fmt.Fprintf(bw, "events: total=%d retained=%d dropped=%d window=[%d,%d] cycles\n",
		r.Total(), r.Total()-r.Dropped(), r.Dropped(), r.first, r.last)
	fmt.Fprintf(bw, "by layer:")
	for l := Layer(0); l < numLayers; l++ {
		fmt.Fprintf(bw, " %s=%d", l, r.byLayer[l])
	}
	fmt.Fprintf(bw, "\nby kind:\n")
	for k := EventKind(0); k < numEventKinds; k++ {
		if r.counts[k] == 0 {
			continue
		}
		fmt.Fprintf(bw, "  %-18s %d\n", k.String(), r.counts[k])
	}
	fmt.Fprintf(bw, "histograms (cycles; power-of-two buckets, quantiles are bucket upper bounds):\n")
	writeHist(bw, "task latency", &r.TaskLatency)
	writeHist(bw, "queue residency", &r.QueueResidency)
	writeHist(bw, "trap residency", &r.TrapResidency)
	writeHist(bw, "queue depth", &r.QueueDepth)
	if len(r.units) > 0 {
		window := r.last - r.first
		fmt.Fprintf(bw, "unit occupancy over %d cycles:\n", window)
		for i := range r.units {
			u := &r.units[i]
			util := 0.0
			if window > 0 {
				util = 100 * float64(u.busy) / float64(window)
			}
			fmt.Fprintf(bw, "  %-16s busy=%-12d intervals=%-8d bytes=%-12d util=%.1f%%\n",
				u.track, u.busy, u.intervals, u.bytes, util)
		}
	}
	return bw.Flush()
}

func writeHist(w io.Writer, name string, h *Histogram) {
	if h.Count() == 0 {
		return
	}
	fmt.Fprintf(w, "  %-16s n=%-8d avg=%-10d p50=%-10d p99=%-10d p999=%-10d max=%d\n",
		name, h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999), h.Max())
}
