// Package libcopier is the client library of the Copier service
// (§5.1.1, Table 2): high-level amemcpy/csync with per-process default
// queues and automatic descriptor management, and low-level variants
// with customized descriptors for framework developers.
//
// All functions charge client-side cycles through the caller's
// execution context; the service performs the copies in its own
// threads.
package libcopier

import (
	"errors"
	"fmt"

	"copier/internal/core"
	"copier/internal/cycles"
	"copier/internal/mem"
	"copier/internal/sim"
	"copier/internal/units"
)

// ErrQueueFull is returned when the client's Copy Queue has no free
// slot (callers may retry or fall back to sync copy).
var ErrQueueFull = errors.New("libcopier: copy queue full")

// Lib is the per-process libCopier state: the Copier client with its
// default queues, the descriptor pool and the dst→descriptor lookup
// table used by csync.
type Lib struct {
	client *core.Client

	// active holds descriptors of in-flight copies, newest last;
	// csync scans newest-first so the latest copy onto a buffer
	// governs readiness.
	active []*activeDesc
	// pool recycles descriptors by segment-count bucket
	// ("libCopier maintains a descriptor pool", §5.1.1).
	pool map[int][]*core.Descriptor
	// bindings are shared-memory descriptor bindings (§5.1.1).
	bindings []*ShmBinding

	// Stats
	Submitted int64
	Csyncs    int64
	CsyncHits int64 // csync found data already ready
	Recycled  int64
}

type activeDesc struct {
	desc *core.Descriptor
	task *core.Task
}

// New wraps a Copier client in per-process library state.
func New(client *core.Client) *Lib {
	return &Lib{client: client, pool: make(map[int][]*core.Descriptor)}
}

// Client exposes the underlying Copier client.
func (l *Lib) Client() *core.Client { return l.client }

// Opts customizes low-level submissions (_amemcpy, Table 2).
type Opts struct {
	// KMode submits to the kernel-mode queue set (OS services only).
	KMode bool
	// Handler is the post-copy FUNC (KFUNC when Handler.Kernel).
	Handler *core.Handler
	// Desc reuses a caller-managed descriptor instead of the pool.
	Desc *core.Descriptor
	// SegSize overrides the segment granularity.
	SegSize units.Bytes
	// Lazy marks a Lazy Copy Task (§4.4).
	Lazy bool
	// LazyDeadline bounds how long a lazy task may linger; zero uses
	// the service default.
	LazyDeadline sim.Time
	// SrcAS/DstAS override the address spaces (kernel services copy
	// across spaces); nil defaults to the client's user space (or
	// kernel space for KMode sources/destinations as appropriate).
	SrcAS, DstAS *mem.AddrSpace
	// NoTrack skips the csync lookup table (callers hold the
	// descriptor and csync through CsyncDesc).
	NoTrack bool
}

// Amemcpy is the high-level asynchronous memcpy: it allocates a
// descriptor from the pool, submits a Copy Task on the default user
// queue and returns immediately (Fig. 4).
func (l *Lib) Amemcpy(ctx core.Ctx, dst, src mem.VA, n units.Bytes) error {
	return l.AmemcpyOpts(ctx, dst, src, n, Opts{})
}

// AmemcpyOpts is the low-level _amemcpy with explicit options.
func (l *Lib) AmemcpyOpts(ctx core.Ctx, dst, src mem.VA, n units.Bytes, o Opts) error {
	if n < 0 {
		return fmt.Errorf("libcopier: negative length %d", n)
	}
	if n == 0 {
		return nil
	}
	srcAS, dstAS := o.SrcAS, o.DstAS
	if srcAS == nil {
		srcAS = l.client.UAS
	}
	if dstAS == nil {
		dstAS = l.client.UAS
	}
	segSize := o.SegSize
	if segSize <= 0 {
		segSize = core.DefaultSegSize
	}
	desc := o.Desc
	if desc == nil {
		ctx.Exec(cycles.DescriptorAlloc)
		desc = l.allocDesc(dst, n, segSize)
	}
	deadline := o.LazyDeadline
	if o.Lazy && deadline == 0 {
		deadline = ctx.Now() + defaultLazyPeriod
	}
	t := &core.Task{
		Src: src, Dst: dst, SrcAS: srcAS, DstAS: dstAS,
		Len: n, SegSize: segSize, Desc: desc,
		Handler: o.Handler, Lazy: o.Lazy, LazyDeadline: deadline,
	}
	ctx.Exec(cycles.SubmitTask)
	if !l.client.SubmitCopy(t, o.KMode) {
		return ErrQueueFull
	}
	l.Submitted++
	if !o.NoTrack {
		l.pruneCompleted()
		l.active = append(l.active, &activeDesc{desc: desc, task: t})
	}
	return nil
}

// pruneCompleted recycles descriptors of finished copies back into
// the pool.
func (l *Lib) pruneCompleted() {
	out := l.active[:0]
	for _, ad := range l.active {
		if ad.task != nil && (ad.task.Executed() || ad.task.Aborted()) && ad.desc.Err == nil && ad.desc.Done() {
			bucket := (ad.desc.NumSegs() + 7) / 8
			l.pool[bucket] = append(l.pool[bucket], ad.desc)
			l.Recycled++
			continue
		}
		out = append(out, ad)
	}
	l.active = out
}

const defaultLazyPeriod = 2 * cycles.CyclesPerMicrosecond * 1000

// Amemmove is the overlap-safe asynchronous memmove: overlapping
// ranges are split into two tasks, submitting first the part whose
// source the other part will overwrite (§4.1 footnote).
func (l *Lib) Amemmove(ctx core.Ctx, dst, src mem.VA, n units.Bytes) error {
	return l.AmemmoveOpts(ctx, dst, src, n, Opts{})
}

// AmemmoveOpts is Amemmove with explicit options. Overlapping ranges
// are split into chunks no larger than the overlap distance,
// submitted in the direction that guarantees every chunk's source is
// read before any other chunk overwrites it (the paper's §4.1
// footnote splits once; chunking generalizes it to overlaps larger
// than half the copy).
func (l *Lib) AmemmoveOpts(ctx core.Ctx, dst, src mem.VA, n units.Bytes, o Opts) error {
	if dst == src || n == 0 {
		return nil
	}
	overlap := dst < src+mem.VA(n) && src < dst+mem.VA(n)
	if !overlap {
		return l.AmemcpyOpts(ctx, dst, src, n, o)
	}
	if dst > src {
		// Forward overlap: submit chunks back to front.
		d := units.Bytes(dst - src)
		for end := n; end > 0; {
			start := end - d
			if start < 0 {
				start = 0
			}
			if err := l.AmemcpyOpts(ctx, dst+mem.VA(start), src+mem.VA(start), end-start, o); err != nil {
				return err
			}
			end = start
		}
		return nil
	}
	// Backward overlap: submit chunks front to back.
	d := units.Bytes(src - dst)
	for start := units.Bytes(0); start < n; start += d {
		ln := d
		if start+ln > n {
			ln = n - start
		}
		if err := l.AmemcpyOpts(ctx, dst+mem.VA(start), src+mem.VA(start), ln, o); err != nil {
			return err
		}
	}
	return nil
}

// Csync ensures all prior async copies covering [addr, addr+n) have
// landed before the caller touches the data (Fig. 4). It checks the
// descriptor bitmap; when segments are missing it submits a Sync Task
// (raising their priority) and busy-polls until ready.
func (l *Lib) Csync(ctx core.Ctx, addr mem.VA, n units.Bytes) error {
	ctx.Exec(cycles.CsyncCheck)
	l.Csyncs++
	// The range may span several in-flight copies (e.g. a chunked
	// memmove); sync the intersection with each, newest first.
	var targets []*activeDesc
	for i := len(l.active) - 1; i >= 0; i-- {
		ad := l.active[i]
		if core.RangesOverlap(ad.desc.Base, ad.desc.Len, addr, n) {
			targets = append(targets, ad)
		}
	}
	if len(targets) == 0 {
		// No async copy covers the address: already consistent.
		l.CsyncHits++
		return nil
	}
	for _, ad := range targets {
		lo := addr
		if ad.desc.Base > lo {
			lo = ad.desc.Base
		}
		hi := addr + mem.VA(n)
		if end := ad.desc.Base + mem.VA(ad.desc.Len); end < hi {
			hi = end
		}
		if err := l.csyncDesc(ctx, ad, units.Bytes(lo-ad.desc.Base), units.Bytes(hi-lo), false); err != nil {
			return err
		}
	}
	return nil
}

// CsyncDesc is the low-level _csync against a caller-held descriptor
// (offset-based, Table 2).
func (l *Lib) CsyncDesc(ctx core.Ctx, desc *core.Descriptor, off, n units.Bytes) error {
	ctx.Exec(cycles.CsyncCheck)
	l.Csyncs++
	return l.csyncDesc(ctx, &activeDesc{desc: desc}, off, n, false)
}

func (l *Lib) csyncDesc(ctx core.Ctx, ad *activeDesc, off, n units.Bytes, kmode bool) error {
	d := ad.desc
	if d.Err != nil {
		return d.Err
	}
	if d.Ready(off, n) {
		l.CsyncHits++
		l.maybeRecycle(ad)
		return nil
	}
	ctx.Exec(cycles.CsyncSubmit)
	l.client.SubmitSync(d.Base+mem.VA(off), n, kmode)
	// Wait on the descriptor's own watch signal: descriptors on
	// shared memory may be csynced by a process other than the
	// submitter (§5.1.1).
	watch := d.Watch()
	for !d.Ready(off, n) {
		if d.Err != nil {
			return d.Err
		}
		ctx.Exec(cycles.CsyncPoll)
		// Exec yields: the copy may have completed (and broadcast)
		// meanwhile. Re-check before registering on the watch — the
		// check+register pair runs without yielding, so no wakeup can
		// be lost.
		if d.Ready(off, n) || d.Err != nil {
			continue
		}
		ctx.SpinUntil(watch)
	}
	l.maybeRecycle(ad)
	return nil
}

// CsyncAll ensures every outstanding async copy and queued FUNC of
// the process finishes (Table 2).
func (l *Lib) CsyncAll(ctx core.Ctx) error {
	ctx.Exec(cycles.CsyncCheck)
	var firstErr error
	for len(l.active) > 0 {
		ad := l.active[len(l.active)-1]
		err := l.csyncDesc(ctx, ad, 0, ad.desc.Len, false)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		// Unlike csync, wait for full task completion so the FUNC is
		// queued (or run) before we return.
		for ad.task != nil && !ad.task.Executed() && !ad.task.Aborted() {
			ctx.Exec(cycles.CsyncPoll)
			if ad.task.Executed() || ad.task.Aborted() {
				break
			}
			ctx.SpinUntil(l.client.Progress)
		}
		l.drop(ad)
	}
	l.PostHandlers(ctx)
	return firstErr
}

// Abort explicitly discards still-queued copies onto [addr, addr+n)
// (§4.4); the affected descriptors are dropped from tracking. Each
// matching in-flight copy is aborted by descriptor identity, so a
// later copy reusing the same buffer is never collaterally discarded.
func (l *Lib) Abort(ctx core.Ctx, addr mem.VA, n units.Bytes) {
	out := l.active[:0]
	for _, ad := range l.active {
		if core.RangesOverlap(ad.desc.Base, ad.desc.Len, addr, n) {
			ctx.Exec(cycles.SubmitTask)
			l.client.SubmitAbortDesc(ad.desc, false)
			continue
		}
		out = append(out, ad)
	}
	l.active = out
}

// PostHandlers drains the Handler Queue, running queued UFUNCs
// (post_handlers in Fig. 4). Returns the number run.
func (l *Lib) PostHandlers(ctx core.Ctx) int {
	n := 0
	for {
		h := l.client.PopHandler()
		if h == nil {
			return n
		}
		ctx.Exec(cycles.HandlerDispatch + h.Cost)
		if h.Fn != nil {
			h.Fn()
		}
		n++
	}
}

// lookup finds the newest active descriptor covering addr.
func (l *Lib) lookup(addr mem.VA) *activeDesc {
	for i := len(l.active) - 1; i >= 0; i-- {
		if l.active[i].desc.Covers(addr) {
			return l.active[i]
		}
	}
	return nil
}

// allocDesc fetches a pooled descriptor or makes a new one.
func (l *Lib) allocDesc(base mem.VA, n, segSize units.Bytes) *core.Descriptor {
	bucket := (core.NumSegsFor(n, segSize) + 7) / 8
	if ds := l.pool[bucket]; len(ds) > 0 {
		d := ds[len(ds)-1]
		l.pool[bucket] = ds[:len(ds)-1]
		d.Reset(base, n)
		return d
	}
	return core.NewDescriptor(base, n, segSize)
}

// maybeRecycle returns a fully-complete tracked descriptor to the
// pool.
func (l *Lib) maybeRecycle(ad *activeDesc) {
	if ad.task == nil || !ad.desc.Done() {
		return
	}
	if !ad.task.Executed() {
		return
	}
	l.drop(ad)
}

func (l *Lib) drop(ad *activeDesc) {
	for i, x := range l.active {
		if x == ad {
			l.active = append(l.active[:i], l.active[i+1:]...)
			bucket := (ad.desc.NumSegs() + 7) / 8
			l.pool[bucket] = append(l.pool[bucket], ad.desc)
			l.Recycled++
			return
		}
	}
}

// ActiveDescriptors reports in-flight tracked copies.
func (l *Lib) ActiveDescriptors() int { return len(l.active) }

// ShmBinding associates a shared-memory region with a descriptor
// living on a dedicated shared buffer (Dshm), so csync on shm
// addresses resolves by offset (§5.1.1 "Shared memory").
//
// Lifecycle (lifelint-checked): a binding stays registered — and its
// descriptor pinned to the region — until UnbindShm; dropping one
// leaks the registration for the process lifetime. ROADMAP item 3's
// Asubmit ticket (COWAIT/COSTATUS) will be specified the same way,
// with one more annotation block and no analyzer changes.
//
//copier:lifecycle type ShmBinding states=bound,unbound accept=unbound dead=unbound
//copier:lifecycle new Lib.ShmDescrBind -> bound
//copier:lifecycle op Lib.UnbindShm bound -> unbound
type ShmBinding struct {
	Base mem.VA
	Len  units.Bytes
	Desc *core.Descriptor
}

// ShmDescrBind binds the shared-memory region starting at shm to
// desc (shm_descr_bind, Table 2). Subsequent CsyncShm calls on
// addresses inside the region wait on the bound descriptor by offset.
func (l *Lib) ShmDescrBind(shm mem.VA, length units.Bytes, desc *core.Descriptor) *ShmBinding {
	b := &ShmBinding{Base: shm, Len: length, Desc: desc}
	l.bindings = append(l.bindings, b)
	return b
}

// CsyncShm syncs [addr, addr+n) against the shm binding covering it;
// it falls back to the regular lookup when no binding matches.
func (l *Lib) CsyncShm(ctx core.Ctx, addr mem.VA, n units.Bytes) error {
	for _, b := range l.bindings {
		if addr >= b.Base && addr < b.Base+mem.VA(b.Len) {
			ctx.Exec(cycles.CsyncCheck)
			l.Csyncs++
			off := units.Bytes(addr - b.Base)
			if off+n > b.Desc.Len {
				n = b.Desc.Len - off
			}
			return l.csyncDesc(ctx, &activeDesc{desc: b.Desc}, off, n, false)
		}
	}
	return l.Csync(ctx, addr, n)
}

// UnbindShm removes a binding.
func (l *Lib) UnbindShm(b *ShmBinding) {
	for i, x := range l.bindings {
		if x == b {
			l.bindings = append(l.bindings[:i], l.bindings[i+1:]...)
			return
		}
	}
}
