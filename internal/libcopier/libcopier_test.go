package libcopier

import (
	"bytes"
	"copier/internal/units"
	"testing"

	"copier/internal/core"
	"copier/internal/mem"
	"copier/internal/sim"
)

// appCtx adapts a raw sim process for tests.
type appCtx struct{ p *sim.Proc }

func (c appCtx) Exec(d sim.Time)         { c.p.Wait(d) }
func (c appCtx) Block(s *sim.Signal)     { s.Wait(c.p) }
func (c appCtx) SpinUntil(s *sim.Signal) { s.Wait(c.p) }
func (c appCtx) Now() sim.Time           { return c.p.Now() }
func (c appCtx) Env() *sim.Env           { return c.p.Env() }
func (c appCtx) BlockTimeout(s *sim.Signal, d sim.Time) bool {
	return s.WaitTimeout(c.p, d)
}

type world struct {
	env *sim.Env
	pm  *mem.PhysMem
	svc *core.Service
	as  *mem.AddrSpace
	lib *Lib
}

func newWorld(t *testing.T) *world {
	t.Helper()
	env := sim.NewEnv()
	pm := mem.NewPhysMem(64 << 20)
	svc := core.NewService(env, pm, core.DefaultConfig())
	as := mem.NewAddrSpace(pm)
	client := svc.NewClient("app", as, as, nil)
	lib := New(client)
	env.Go("copierd", func(p *sim.Proc) { svc.ThreadMain(appCtx{p}, 0) })
	return &world{env: env, pm: pm, svc: svc, as: as, lib: lib}
}

func (w *world) buf(t *testing.T, n int, fill byte) mem.VA {
	t.Helper()
	va := w.as.MMap(units.Bytes(n), mem.PermRead|mem.PermWrite, "b")
	if _, err := w.as.Populate(va, units.Bytes(n), true); err != nil {
		t.Fatal(err)
	}
	if err := w.as.WriteAt(va, bytes.Repeat([]byte{fill}, n)); err != nil {
		t.Fatal(err)
	}
	return va
}

// runApp runs fn as an application thread, then shuts the world down.
func (w *world) runApp(t *testing.T, fn func(ctx core.Ctx)) {
	t.Helper()
	w.env.Go("app", func(p *sim.Proc) {
		fn(appCtx{p})
		w.svc.Stop()
	})
	if err := w.env.Run(sim.Infinity); err != nil {
		t.Fatal(err)
	}
}

func TestAmemcpyCsyncRoundTrip(t *testing.T) {
	w := newWorld(t)
	const n = 16 << 10
	src := w.buf(t, n, 0x5C)
	dst := w.buf(t, n, 0)
	w.runApp(t, func(ctx core.Ctx) {
		if err := w.lib.Amemcpy(ctx, dst, src, n); err != nil {
			t.Error(err)
		}
		// Work during the Copy-Use window.
		ctx.Exec(10_000)
		if err := w.lib.Csync(ctx, dst, n); err != nil {
			t.Error(err)
		}
		got := make([]byte, n)
		if err := w.as.ReadAt(dst, got); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{0x5C}, n)) {
			t.Error("data wrong after csync")
		}
	})
}

func TestCsyncBeforeCompletionBlocks(t *testing.T) {
	w := newWorld(t)
	const n = 256 << 10
	src := w.buf(t, n, 0x11)
	dst := w.buf(t, n, 0)
	w.runApp(t, func(ctx core.Ctx) {
		if err := w.lib.Amemcpy(ctx, dst, src, n); err != nil {
			t.Error(err)
		}
		// Immediately csync the tail — the least-soon-copied bytes.
		if err := w.lib.Csync(ctx, dst+mem.VA(n-1024), 1024); err != nil {
			t.Error(err)
		}
		got := make([]byte, 1024)
		if err := w.as.ReadAt(dst+mem.VA(n-1024), got); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{0x11}, 1024)) {
			t.Error("tail not synced")
		}
	})
}

func TestCsyncUnknownAddressIsNoop(t *testing.T) {
	w := newWorld(t)
	dst := w.buf(t, 1024, 0)
	w.runApp(t, func(ctx core.Ctx) {
		if err := w.lib.Csync(ctx, dst, 64); err != nil {
			t.Error(err)
		}
		if w.lib.CsyncHits != 1 {
			t.Errorf("CsyncHits = %d", w.lib.CsyncHits)
		}
	})
}

func TestCsyncAllWaitsEverythingAndRunsHandlers(t *testing.T) {
	w := newWorld(t)
	const n = 8 << 10
	freed := 0
	var bufs []mem.VA
	for i := 0; i < 3; i++ {
		bufs = append(bufs, w.buf(t, n, byte(i+1)), w.buf(t, n, 0))
	}
	w.runApp(t, func(ctx core.Ctx) {
		for i := 0; i < 3; i++ {
			err := w.lib.AmemcpyOpts(ctx, bufs[2*i+1], bufs[2*i], n, Opts{
				Handler: &core.Handler{Fn: func() { freed++ }},
			})
			if err != nil {
				t.Error(err)
			}
		}
		if err := w.lib.CsyncAll(ctx); err != nil {
			t.Error(err)
		}
		if freed != 3 {
			t.Errorf("handlers run = %d, want 3", freed)
		}
		if w.lib.ActiveDescriptors() != 0 {
			t.Errorf("active descriptors = %d", w.lib.ActiveDescriptors())
		}
	})
}

func TestDescriptorPoolRecycles(t *testing.T) {
	w := newWorld(t)
	const n = 4 << 10
	src := w.buf(t, n, 0x22)
	dst := w.buf(t, n, 0)
	w.runApp(t, func(ctx core.Ctx) {
		for i := 0; i < 5; i++ {
			if err := w.lib.Amemcpy(ctx, dst, src, n); err != nil {
				t.Error(err)
			}
			if err := w.lib.Csync(ctx, dst, n); err != nil {
				t.Error(err)
			}
		}
		if w.lib.Recycled == 0 {
			t.Error("descriptor pool never recycled")
		}
	})
}

func TestAmemmoveOverlapForward(t *testing.T) {
	w := newWorld(t)
	const n = 8 << 10
	base := w.buf(t, 2*n, 0)
	pattern := make([]byte, n)
	for i := range pattern {
		pattern[i] = byte(i % 251)
	}
	if err := w.as.WriteAt(base, pattern); err != nil {
		t.Fatal(err)
	}
	const shift = 1000
	w.runApp(t, func(ctx core.Ctx) {
		if err := w.lib.Amemmove(ctx, base+shift, base, n); err != nil {
			t.Error(err)
		}
		if err := w.lib.Csync(ctx, base+shift, n); err != nil {
			t.Error(err)
		}
		got := make([]byte, n)
		if err := w.as.ReadAt(base+shift, got); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, pattern) {
			for i := range got {
				if got[i] != pattern[i] {
					t.Errorf("forward memmove corrupt at %d: %x != %x", i, got[i], pattern[i])
					break
				}
			}
		}
	})
}

func TestAmemmoveOverlapBackward(t *testing.T) {
	w := newWorld(t)
	const n = 8 << 10
	base := w.buf(t, 2*n, 0)
	pattern := make([]byte, n)
	for i := range pattern {
		pattern[i] = byte(i % 239)
	}
	const shift = 1000
	if err := w.as.WriteAt(base+shift, pattern); err != nil {
		t.Fatal(err)
	}
	w.runApp(t, func(ctx core.Ctx) {
		if err := w.lib.Amemmove(ctx, base, base+shift, n); err != nil {
			t.Error(err)
		}
		if err := w.lib.Csync(ctx, base, n); err != nil {
			t.Error(err)
		}
		got := make([]byte, n)
		if err := w.as.ReadAt(base, got); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, pattern) {
			t.Error("backward memmove corrupt")
		}
	})
}

func TestAbortDropsTracking(t *testing.T) {
	w := newWorld(t)
	const n = 4 << 10
	src := w.buf(t, n, 0x33)
	dst := w.buf(t, n, 0)
	w.runApp(t, func(ctx core.Ctx) {
		err := w.lib.AmemcpyOpts(ctx, dst, src, n, Opts{Lazy: true, LazyDeadline: sim.Infinity})
		if err != nil {
			t.Error(err)
		}
		w.lib.Abort(ctx, dst, n)
		if w.lib.ActiveDescriptors() != 0 {
			t.Errorf("active = %d after abort", w.lib.ActiveDescriptors())
		}
		// Give the service time to process the abort.
		ctx.Exec(1_000_000)
	})
	if w.svc.Stats.AbortedTasks != 1 {
		t.Fatalf("aborted = %d", w.svc.Stats.AbortedTasks)
	}
}

func TestCsyncErrorPropagates(t *testing.T) {
	w := newWorld(t)
	src := w.buf(t, 1024, 1)
	w.runApp(t, func(ctx core.Ctx) {
		// Destination outside any VMA.
		if err := w.lib.Amemcpy(ctx, mem.VA(0xdeadbeef000), src, 1024); err != nil {
			t.Error(err)
		}
		err := w.lib.Csync(ctx, mem.VA(0xdeadbeef000), 1024)
		if err == nil {
			t.Error("csync did not surface the fault")
		}
	})
}

func TestShmDescrBind(t *testing.T) {
	w := newWorld(t)
	const n = 8 << 10
	src := w.buf(t, n, 0x66)
	shm := w.buf(t, n, 0)
	w.runApp(t, func(ctx core.Ctx) {
		desc := core.NewDescriptor(shm, n, core.DefaultSegSize)
		b := w.lib.ShmDescrBind(shm, n, desc)
		err := w.lib.AmemcpyOpts(ctx, shm, src, n, Opts{Desc: desc, NoTrack: true})
		if err != nil {
			t.Error(err)
		}
		if err := w.lib.CsyncShm(ctx, shm+100, 1000); err != nil {
			t.Error(err)
		}
		got := make([]byte, 1000)
		if err := w.as.ReadAt(shm+100, got); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{0x66}, 1000)) {
			t.Error("shm csync returned before data ready")
		}
		w.lib.UnbindShm(b)
		if err := w.lib.CsyncShm(ctx, shm, 64); err != nil {
			t.Error(err)
		}
	})
}

func TestZeroAndNegativeLengths(t *testing.T) {
	w := newWorld(t)
	dst := w.buf(t, 1024, 0)
	w.runApp(t, func(ctx core.Ctx) {
		if err := w.lib.Amemcpy(ctx, dst, dst+512, 0); err != nil {
			t.Error("zero-length amemcpy failed")
		}
		if err := w.lib.AmemcpyOpts(ctx, dst, dst+512, -1, Opts{}); err == nil {
			t.Error("negative length accepted")
		}
		if err := w.lib.Amemmove(ctx, dst, dst, 512); err != nil {
			t.Error("self memmove failed")
		}
	})
}

func TestQueueFull(t *testing.T) {
	env := sim.NewEnv()
	pm := mem.NewPhysMem(16 << 20)
	cfg := core.DefaultConfig()
	cfg.QueueLen = 2
	svc := core.NewService(env, pm, cfg)
	as := mem.NewAddrSpace(pm)
	lib := New(svc.NewClient("app", as, as, nil))
	va := as.MMap(64<<10, mem.PermRead|mem.PermWrite, "b")
	if _, err := as.Populate(va, 64<<10, true); err != nil {
		t.Fatal(err)
	}
	// No service thread running: the ring fills.
	env.Go("app", func(p *sim.Proc) {
		ctx := appCtx{p}
		var sawFull bool
		for i := 0; i < 10; i++ {
			if err := lib.Amemcpy(ctx, va, va+32<<10, 1024); err == ErrQueueFull {
				sawFull = true
				break
			}
		}
		if !sawFull {
			t.Error("queue never filled")
		}
	})
	if err := env.Run(sim.Infinity); err != nil {
		t.Fatal(err)
	}
}
