package copier

// One benchmark per table and figure in the paper's evaluation (§6),
// each regenerating the corresponding rows via the experiment harness,
// plus native-hardware benchmarks of the real-time acopy library and
// the hot data structures. `go test -bench=. -benchmem` runs
// everything at Quick scale; `go run ./cmd/copierbench -run all -full`
// prints the full tables.

import (
	"bytes"
	"fmt"
	"testing"

	"copier/internal/acopy"
	"copier/internal/bench"
	"copier/internal/core"
	"copier/internal/cycles"
	"copier/internal/hw"
	"copier/internal/mem"
	"copier/internal/units"
)

// runExperiment drives one registered experiment per iteration and
// reports a headline metric parsed from its first table.
func runExperiment(b *testing.B, id string) {
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables := e.Run(bench.Quick)
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", id)
		}
	}
}

// --- Figures and tables (simulated machine) ---

func BenchmarkFig2aCopyShare(b *testing.B)       { runExperiment(b, "fig2a") }
func BenchmarkFig2bPhoneCopyShare(b *testing.B)  { runExperiment(b, "fig2b") }
func BenchmarkFig3CopyUseWindow(b *testing.B)    { runExperiment(b, "fig3") }
func BenchmarkFig7aUnitThroughput(b *testing.B)  { runExperiment(b, "fig7a") }
func BenchmarkFig9CopierThroughput(b *testing.B) { runExperiment(b, "fig9") }
func BenchmarkFig10Syscalls(b *testing.B)        { runExperiment(b, "fig10") }
func BenchmarkBinderIPC(b *testing.B)            { runExperiment(b, "binder") }
func BenchmarkCoWFaults(b *testing.B)            { runExperiment(b, "cow") }
func BenchmarkFig11Redis(b *testing.B)           { runExperiment(b, "fig11") }
func BenchmarkFig12aProxy(b *testing.B)          { runExperiment(b, "fig12a") }
func BenchmarkFig12bScalability(b *testing.B)    { runExperiment(b, "fig12b") }
func BenchmarkFig12cBreakdown(b *testing.B)      { runExperiment(b, "fig12c") }
func BenchmarkFig13aProtobuf(b *testing.B)       { runExperiment(b, "fig13a") }
func BenchmarkFig13bOpenSSL(b *testing.B)        { runExperiment(b, "fig13b") }
func BenchmarkZlibDeflate(b *testing.B)          { runExperiment(b, "zlib") }
func BenchmarkFig13cAvcodec(b *testing.B)        { runExperiment(b, "fig13c") }
func BenchmarkFig14FourCores(b *testing.B)       { runExperiment(b, "fig14") }
func BenchmarkBreakEven(b *testing.B)            { runExperiment(b, "scope") }
func BenchmarkCPIStudy(b *testing.B)             { runExperiment(b, "cpi") }

// --- Real-hardware benchmarks: the acopy library (native Go) ---

// BenchmarkACopySyncBaseline is the reference: a plain copy followed
// by the compute that uses the data.
func BenchmarkACopySyncBaseline(b *testing.B) {
	for _, n := range []int{64 << 10, 1 << 20, 8 << 20} {
		b.Run(fmt.Sprintf("%dKB", n>>10), func(b *testing.B) {
			src := bytes.Repeat([]byte{7}, n)
			dst := make([]byte, n)
			b.SetBytes(int64(n))
			b.ResetTimer()
			var acc byte
			for i := 0; i < b.N; i++ {
				copy(dst, src)
				acc += consume(dst)
			}
			sinkByte = acc
		})
	}
}

// BenchmarkACopyOverlap overlaps the copy with the same compute via
// the background copier — the Copy-Use window on real hardware.
func BenchmarkACopyOverlap(b *testing.B) {
	cp := acopy.New(1)
	defer cp.Close()
	for _, n := range []int{64 << 10, 1 << 20, 8 << 20} {
		b.Run(fmt.Sprintf("%dKB", n>>10), func(b *testing.B) {
			src := bytes.Repeat([]byte{7}, n)
			dst := make([]byte, n)
			b.SetBytes(int64(n))
			b.ResetTimer()
			var acc byte
			for i := 0; i < b.N; i++ {
				h := cp.AMemcpy(dst, src)
				// Pipeline: consume each chunk as it lands.
				const chunk = 64 << 10
				for off := 0; off < n; off += chunk {
					end := off + chunk
					if end > n {
						end = n
					}
					h.CSync(units.Bytes(off), units.Bytes(end-off))
					acc += consume(dst[off:end])
				}
				h.Wait()
			}
			sinkByte = acc
		})
	}
}

var sinkByte byte

// consume is the per-byte compute standing in for parsing/decoding.
func consume(p []byte) byte {
	var acc byte
	for i := 0; i < len(p); i += 64 {
		acc ^= p[i] + p[i]>>3
	}
	return acc
}

// --- Data-structure microbenchmarks ---

func BenchmarkRingPushPop(b *testing.B) {
	r := core.NewRing(1024)
	t := &core.Task{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Push(t)
		r.Pop()
	}
}

func BenchmarkDescriptorMarkReady(b *testing.B) {
	d := core.NewDescriptor(0, 256<<10, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		off := units.Bytes((i * 1024) % (256 << 10))
		d.MarkRange(off, 1024)
		if !d.Ready(off, 1024) {
			b.Fatal("not ready")
		}
	}
}

func BenchmarkCopyScatter(b *testing.B) {
	pm := mem.NewPhysMem(16 << 20)
	src, _ := pm.AllocFrames(16)
	dst, _ := pm.AllocFrames(16)
	sr := []hw.FrameRange{{Frame: src[0], Off: 0, Len: 16 * mem.PageSize}}
	dr := []hw.FrameRange{{Frame: dst[0], Off: 0, Len: 16 * mem.PageSize}}
	b.SetBytes(16 * mem.PageSize)
	for i := 0; i < b.N; i++ {
		hw.CopyScatter(pm, dr, sr)
	}
}

func BenchmarkCostModel(b *testing.B) {
	var acc int64
	for i := 0; i < b.N; i++ {
		acc += int64(cycles.SyncCopyCost(cycles.UnitAVX, units.Bytes(i%(1<<20))))
	}
	sinkInt = acc
}

var sinkInt int64
