// Package copier is a from-scratch reproduction of "How to Copy
// Memory? Coordinated Asynchronous Copy as a First-Class OS Service"
// (SOSP 2025): the Copier OS service, every substrate its evaluation
// depends on, the toolchain, and a benchmark harness regenerating the
// paper's tables and figures.
//
// Layout:
//
//   - internal/core      — the Copier service (CSH queues, segments,
//     barriers, dependency tracking, piggyback dispatcher, absorption,
//     CFS-by-copy-length scheduling, cgroup controller, proactive
//     fault handling).
//   - internal/libcopier — the client library (amemcpy/csync, Table 2).
//   - internal/sim, mem, hw, cycles — the deterministic machine
//     simulator: event kernel, virtual memory, copy engines, cost model.
//   - internal/kernel    — the simulated OS: CPU scheduler, syscalls,
//     sockets, Binder IPC, CoW handling, cgroups.
//   - internal/baseline  — zIO, MSG_ZEROCOPY, Userspace Bypass,
//     io_uring comparison models.
//   - internal/apps      — Redis/TinyProxy/Protobuf/OpenSSL/zlib/
//     Avcodec workload models.
//   - internal/acopy     — a real-time (non-simulated) async-copy
//     library for native Go programs.
//   - internal/sanitizer, copiergen, model — CopierSanitizer,
//     CopierGen, and the executable refinement checker.
//   - internal/bench, cmd/copierbench — the experiment harness.
//
// Start with examples/quickstart, then see DESIGN.md for the system
// inventory and EXPERIMENTS.md for paper-vs-measured results.
package copier

// Version of the reproduction.
const Version = "1.0.0"
