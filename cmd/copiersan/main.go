// Command copiersan demonstrates CopierSanitizer (§5.1.2): it runs a
// small program violating each csync guideline once — reading the
// destination, overwriting the destination, overwriting the source
// and freeing the source, all while a copy is in flight — and prints
// the violations the shadow-memory checker reports.
package main

import (
	"fmt"
	"io"
	"os"

	"copier/internal/mem"
	"copier/internal/sanitizer"
)

// run executes the demo program against w. The output is
// deterministic (virtual address layout is fixed by mapping order)
// and pinned by a golden test.
func run(w io.Writer) {
	pm := mem.NewPhysMem(16 << 20)
	as := mem.NewAddrSpace(pm)
	src := as.MMap(64<<10, mem.PermRead|mem.PermWrite, "src")
	dst := as.MMap(64<<10, mem.PermRead|mem.PermWrite, "dst")
	src2 := as.MMap(4<<10, mem.PermRead|mem.PermWrite, "src2")
	tmp := as.MMap(4<<10, mem.PermRead|mem.PermWrite, "tmp")

	sz := sanitizer.New(as)
	fmt.Fprintln(w, "program: amemcpy(dst, src, 16KB); read dst; write dst; write src;")
	fmt.Fprintln(w, "         amemcpy(tmp, src2, 4KB); free(src2); csync; read dst; free(src)")

	sz.OnAmemcpy(dst, src, 16<<10)

	buf := make([]byte, 64)
	_ = sz.Read(dst, buf)      // BUG: destination read before csync
	_ = sz.Write(dst+128, buf) // BUG: destination written before csync
	_ = sz.Write(src+100, buf) // BUG: source overwritten in flight

	sz.OnAmemcpy(tmp, src2, 4<<10)
	sz.CheckFree(src2, 4<<10) // BUG: source freed before csync

	sz.OnCsync(dst, 16<<10)
	sz.OnCsync(tmp, 4<<10)
	_ = sz.Read(dst+4096, buf) // OK: synced
	sz.CheckFree(src, 64<<10)  // OK: synced

	fmt.Fprintf(w, "\n%d violation(s) detected:\n", len(sz.Reports))
	for _, r := range sz.Reports {
		fmt.Fprintf(w, "  %s\n", r)
	}
	if len(sz.Reports) == 0 {
		fmt.Fprintln(w, "  (none — unexpected!)")
	}
}

func main() {
	run(os.Stdout)
}
