// Command copiersan demonstrates CopierSanitizer (§5.1.2): it runs a
// small program with a deliberately missing csync and prints the
// violations the shadow-memory checker reports.
package main

import (
	"fmt"

	"copier/internal/mem"
	"copier/internal/sanitizer"
)

func main() {
	pm := mem.NewPhysMem(16 << 20)
	as := mem.NewAddrSpace(pm)
	src := as.MMap(64<<10, mem.PermRead|mem.PermWrite, "src")
	dst := as.MMap(64<<10, mem.PermRead|mem.PermWrite, "dst")

	sz := sanitizer.New(as)
	fmt.Println("program: amemcpy(dst, src, 16KB); read dst; write src; csync; read dst; free(src)")

	sz.OnAmemcpy(dst, src, 16<<10)

	buf := make([]byte, 64)
	_ = sz.Read(dst, buf)      // BUG: read before csync
	_ = sz.Write(src+100, buf) // BUG: source overwritten in flight
	sz.OnCsync(dst, 16<<10)    // now everything is synced
	_ = sz.Read(dst+4096, buf) // OK
	sz.CheckFree(src, 64<<10)  // OK after csync

	fmt.Printf("\n%d violation(s) detected:\n", len(sz.Reports))
	for _, r := range sz.Reports {
		fmt.Printf("  %s\n", r)
	}
	if len(sz.Reports) == 0 {
		fmt.Println("  (none — unexpected!)")
	}
}
