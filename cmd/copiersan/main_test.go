package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden file")

// TestRunGolden pins the demo's exact output and checks that the
// program trips all four sanitizer bug kinds exactly once each.
func TestRunGolden(t *testing.T) {
	var buf bytes.Buffer
	run(&buf)
	out := buf.String()

	for _, kind := range []string{
		"read-before-csync",
		"write-before-csync",
		"write-src-before-csync",
		"free-before-csync",
	} {
		if n := strings.Count(out, kind); n != 1 {
			t.Errorf("output mentions %s %d time(s), want exactly 1", kind, n)
		}
	}

	golden := filepath.Join("testdata", "copiersan.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output diverges from %s\n--- got ---\n%s--- want ---\n%s", golden, out, want)
	}
}
