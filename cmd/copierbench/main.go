// Command copierbench regenerates the paper's evaluation tables and
// figures on the simulated machine.
//
// Usage:
//
//	copierbench -list              # show available experiments
//	copierbench -run fig11        # one experiment
//	copierbench -run all -full    # everything at figure scale
//	copierbench -run fig9 -trace t.json -metrics
//
// -trace records every typed observability event emitted during the
// runs and writes a Chrome trace_event JSON file loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing; timestamps are
// virtual cycles. -metrics prints the compact text summary (event
// counts, latency histograms, unit occupancy) after the runs.
//
// -benchjson skips the experiments and instead runs the hot-path
// microbenchmarks (simulator event queue, service ring/dispatch,
// acopy runtime) via testing.Benchmark, writing ns/op, allocs/op and
// bytes-per-second results as JSON — `make bench` uses this to
// refresh BENCH_results.json.
//
// -shards N runs parallelizable experiments (fig9, fig12b, chaos,
// fleet, fleetpar) on N host worker threads. Output is byte-identical
// at every value — the conservative-lookahead window and the job
// pool's index-ordered merge guarantee it, and the TestShardIdentity*
// goldens enforce it — so the flag changes wall clock only.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"copier/internal/bench"
	"copier/internal/obs"
	"copier/internal/sim"
)

func runBenchJSON(path string) {
	rep := bench.RunMicrobenches()
	fmt.Printf("%-26s %14s %11s %14s\n", "benchmark", "ns/op", "allocs/op", "MB/s")
	for _, r := range rep.Results {
		mbs := "-"
		if r.SimBytesPerSec > 0 {
			mbs = fmt.Sprintf("%.1f", r.SimBytesPerSec/1e6)
		}
		fmt.Printf("%-26s %14.2f %11d %14s\n", r.Name, r.NsPerOp, r.AllocsPerOp, mbs)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "copierbench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "copierbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "copierbench: wrote %d benchmark results to %s\n", len(rep.Results), path)
}

func main() {
	list := flag.Bool("list", false, "list experiments")
	run := flag.String("run", "all", "experiment id (or comma list, or 'all')")
	full := flag.Bool("full", false, "full figure-scale sweeps (slower)")
	trace := flag.String("trace", "", "write Chrome/Perfetto trace_event JSON to this file")
	metrics := flag.Bool("metrics", false, "print event-count and latency-histogram summary")
	benchjson := flag.String("benchjson", "", "run hot-path microbenchmarks and write JSON results to this file")
	shards := flag.Int("shards", 1, "host worker threads for parallelizable experiments (output is byte-identical at any value)")
	flag.Parse()

	bench.SetWorkers(*shards)

	if *benchjson != "" {
		runBenchJSON(*benchjson)
		return
	}
	if *list {
		fmt.Println("experiment  reproduces")
		fmt.Println("---------------------")
		for _, e := range bench.Experiments() {
			fmt.Printf("%-10s  %s\n", e.ID, e.Paper)
		}
		return
	}
	scale := bench.Quick
	if *full {
		scale = bench.Full
	}

	// Experiments create simulation environments internally (often one
	// per data point), so recording attaches via the env-creation hook:
	// one recorder observes every environment the run builds.
	var rec *obs.Recorder
	if *trace != "" || *metrics {
		rec = obs.NewRecorder(obs.DefaultRingCap)
		sim.OnNewEnv = func(e *sim.Env) { e.SetRecorder(rec) }
		defer func() { sim.OnNewEnv = nil }()
	}

	var ids []string
	if *run == "all" {
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		e, ok := bench.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "copierbench: unknown experiment %q (try -list)\n", id)
			os.Exit(1)
		}
		for _, t := range e.Run(scale) {
			t.Fprint(os.Stdout)
		}
	}

	if rec == nil {
		return
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "copierbench: %v\n", err)
			os.Exit(1)
		}
		err = rec.WritePerfetto(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "copierbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "copierbench: wrote %d events (%d dropped) to %s\n",
			rec.Total(), rec.Dropped(), *trace)
	}
	if *metrics {
		fmt.Println()
		rec.WriteSummary(os.Stdout)
	}
}
