// Command copierbench regenerates the paper's evaluation tables and
// figures on the simulated machine.
//
// Usage:
//
//	copierbench -list              # show available experiments
//	copierbench -run fig11        # one experiment
//	copierbench -run all -full    # everything at figure scale
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"copier/internal/bench"
)

func main() {
	list := flag.Bool("list", false, "list experiments")
	run := flag.String("run", "all", "experiment id (or comma list, or 'all')")
	full := flag.Bool("full", false, "full figure-scale sweeps (slower)")
	flag.Parse()

	if *list {
		fmt.Println("experiment  reproduces")
		fmt.Println("---------------------")
		for _, e := range bench.Experiments() {
			fmt.Printf("%-10s  %s\n", e.ID, e.Paper)
		}
		return
	}
	scale := bench.Quick
	if *full {
		scale = bench.Full
	}
	var ids []string
	if *run == "all" {
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		e, ok := bench.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "copierbench: unknown experiment %q (try -list)\n", id)
			os.Exit(1)
		}
		for _, t := range e.Run(scale) {
			t.Fprint(os.Stdout)
		}
	}
}
