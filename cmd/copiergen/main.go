// Command copiergen demonstrates CopierGen (§5.1.3): it ports a
// mini-IR function — converting memcpy to amemcpy and inserting
// csyncs per the guidelines — prints the before/after IR, and
// verifies observational equivalence under adversarial completion.
package main

import (
	"fmt"

	"copier/internal/copiergen"
)

func main() {
	f := &copiergen.Func{
		Name: "copyUse",
		Vars: []copiergen.Var{{Name: "src", Size: 8192}, {Name: "dst", Size: 8192}, {Name: "obj", Size: 1024}},
		Ops: []copiergen.Op{
			{Kind: copiergen.OpCopy, Dst: "dst", Src: "src", Len: 8192},
			{Kind: copiergen.OpCompute},
			{Kind: copiergen.OpLoad, Src: "dst", SrcOff: 0, Len: 8},
			{Kind: copiergen.OpCopy, Dst: "obj", Src: "dst", SrcOff: 100, Len: 512},
			{Kind: copiergen.OpCall, Dst: "obj", Fn: "strchr"},
			{Kind: copiergen.OpFree, Dst: "src"},
		},
	}
	orig := &copiergen.Func{Name: f.Name, Vars: f.Vars, Ops: append([]copiergen.Op(nil), f.Ops...)}

	fmt.Println("before:")
	for i, op := range f.Ops {
		fmt.Printf("  %2d  %v\n", i, op)
	}
	if err := copiergen.Port(f, 1024); err != nil {
		fmt.Println("port failed:", err)
		return
	}
	fmt.Println("\nafter (memcpy>=1KB -> amemcpy, csyncs inserted):")
	for i, op := range f.Ops {
		fmt.Printf("  %2d  %v\n", i, op)
	}

	// Differential check: sync reference vs adversarially-deferred
	// async execution.
	a := copiergen.NewInterp(orig)
	if err := a.Run(orig, false); err != nil {
		panic(err)
	}
	b := copiergen.NewInterp(f)
	if err := b.Run(f, true); err != nil {
		panic(err)
	}
	same := string(a.Snapshot()) == string(b.Snapshot()) &&
		string(a.Observed) == string(b.Observed)
	fmt.Printf("\nobservational equivalence under worst-case completion: %v\n", same)
}
