// Command copiertrace renders a cycle-accurate, per-core/per-unit
// timeline of the Copier service handling the paper's proxy pattern
// (§4.4): a lazy recv copy whose header is promoted by csync, a
// forwarding send that absorbs the unexecuted remainder straight from
// the kernel source, and the final abort discarding the dead
// intermediate copy.
//
// The timeline is driven by the typed observability stream
// (internal/obs): every row is one recorded event, ordered by virtual
// time, grouped under its track (kernel:coreN, hw:AVX, hw:DMA,
// core:tasks, ...). With -trace the same stream is written as
// Chrome/Perfetto trace_event JSON; with -summary the histogram and
// occupancy summary follows the timeline.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"copier/internal/core"
	"copier/internal/cycles"
	"copier/internal/kernel"
	"copier/internal/libcopier"
	"copier/internal/mem"
	"copier/internal/obs"
	"copier/internal/sim"
	"copier/internal/units"
)

func main() {
	traceOut := flag.String("trace", "", "also write Chrome/Perfetto trace_event JSON to this file")
	summary := flag.Bool("summary", false, "print histogram and occupancy summary after the timeline")
	flag.Parse()

	rec := obs.NewRecorder(obs.DefaultRingCap)
	sim.OnNewEnv = func(e *sim.Env) { e.SetRecorder(rec) }

	m := kernel.NewMachine(kernel.Config{Cores: 3})
	m.InstallCopier(core.DefaultConfig(), 1, 2)
	proxy := m.NewProcess("proxy")
	attach := m.AttachCopier(proxy)

	const n = 32 << 10
	kas := m.KernelAS
	k1 := mustKBuf(kas, n) // incoming message in a kernel buffer
	fillK(kas, k1, n)
	u := mustBuf(proxy, n) // proxy's user buffer
	k2 := mustKBuf(kas, n) // outgoing kernel buffer

	th := m.Spawn(proxy, "forward", func(t *kernel.Thread) {
		lib := attach.Lib
		desc := core.NewDescriptor(u, n, core.DefaultSegSize)
		err := lib.AmemcpyOpts(t, u, k1, n, libcopier.Opts{
			KMode: true, Lazy: true, Desc: desc, LazyDeadline: sim.Infinity,
			SrcAS: m.KernelAS, DstAS: proxy.AS,
		})
		if err != nil {
			panic(err)
		}
		// csync the 128-byte header — promotes one segment only.
		if err := lib.CsyncDesc(t, desc, 0, 128); err != nil {
			panic(err)
		}
		t.Exec(cycles.Mul(128, cycles.ParseByteNum, cycles.ParseByteDen))
		// Route decided; send U -> K2 absorbs the rest from K1.
		sendDesc := core.NewDescriptor(k2, n, core.DefaultSegSize)
		err = lib.AmemcpyOpts(t, k2, u, n, libcopier.Opts{
			KMode: true, Desc: sendDesc, NoTrack: true,
			SrcAS: proxy.AS, DstAS: m.KernelAS,
		})
		if err != nil {
			panic(err)
		}
		if err := lib.CsyncDesc(t, sendDesc, 0, n); err != nil {
			panic(err)
		}
		// Forwarded; abort the dead lazy copy.
		attach.Client.SubmitAbortDesc(desc, false)
		t.Exec(5_000)
	})
	if err := m.RunApps(th); err != nil {
		panic(err)
	}

	printTimeline(rec)

	svc := m.Copier()
	fmt.Printf("\nstats: tasks=%d absorbed=%dB aborted=%d avx=%dB dma=%dB\n",
		svc.Stats.TasksExecuted, svc.Stats.AbsorbedBytes, svc.Stats.AbortedTasks,
		svc.Stats.AVXBytes, svc.Stats.DMABytes)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			panic(err)
		}
		err = rec.WritePerfetto(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			panic(err)
		}
		fmt.Printf("wrote %d events to %s\n", rec.Total(), *traceOut)
	}
	if *summary {
		fmt.Println()
		rec.WriteSummary(os.Stdout)
	}
}

// printTimeline prints the recorded events in virtual-time order, one
// row per event, keyed by track. Span events (thread runs, unit busy
// intervals, syscalls) sort by their start time; ties keep emission
// order, which is deterministic.
func printTimeline(rec *obs.Recorder) {
	var evs []obs.Event
	rec.Events(func(e *obs.Event) { evs = append(evs, *e) })
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	fmt.Printf("%12s  %-15s %s\n", "cycles", "track", "event")
	fmt.Printf("%12s  %-15s %s\n", "------", "-----", "-----")
	for i := range evs {
		e := &evs[i]
		fmt.Printf("%12d  %-15s %s\n", e.T, e.Track, describe(e))
	}
}

// describe renders one event's payload for the timeline.
func describe(e *obs.Event) string {
	switch e.Kind {
	case obs.EvTaskSubmit:
		return fmt.Sprintf("submit %s task=%d len=%dB", e.Name, e.A, e.B)
	case obs.EvTaskDispatch:
		return fmt.Sprintf("dispatch %s task=%d queued=%d", e.Name, e.A, e.B)
	case obs.EvSegmentDone:
		return fmt.Sprintf("segment %s task=%d len=%dB", e.Name, e.A, e.B)
	case obs.EvTaskComplete:
		return fmt.Sprintf("complete %s task=%d latency=%d", e.Name, e.A, e.B)
	case obs.EvQueueDepthSample:
		return fmt.Sprintf("backlog %s depth=%d", e.Name, e.B)
	case obs.EvUnitBusyInterval:
		return fmt.Sprintf("busy %s %dB [+%d)", e.Name, e.A, e.Dur)
	case obs.EvThreadRun:
		return fmt.Sprintf("run %s tid=%d [+%d)", e.Name, e.A, e.Dur)
	case obs.EvTrapReturn:
		return fmt.Sprintf("syscall %s tid=%d [+%d)", e.Name, e.A, e.Dur)
	case obs.EvDMASubmit:
		return fmt.Sprintf("dma-submit %dB", e.A)
	case obs.EvProcStart, obs.EvProcEnd:
		return fmt.Sprintf("%s %s", e.Kind, e.Name)
	case obs.EvATCacheHit, obs.EvATCacheMiss:
		return fmt.Sprintf("at-cache %s vpn=%#x", e.Name, e.A)
	default:
		return fmt.Sprintf("%s %s a=%d b=%d", e.Kind, e.Name, e.A, e.B)
	}
}

func mustBuf(p *kernel.Process, n units.Bytes) mem.VA {
	va := p.AS.MMap(n, mem.PermRead|mem.PermWrite, "buf")
	if _, err := p.AS.Populate(va, n, true); err != nil {
		panic(err)
	}
	return va
}

func mustKBuf(kas *mem.AddrSpace, n units.Bytes) mem.VA {
	va := kas.MMap(n, mem.PermRead|mem.PermWrite, "kbuf")
	if _, err := kas.Populate(va, n, true); err != nil {
		panic(err)
	}
	return va
}

func fillK(kas *mem.AddrSpace, va mem.VA, n int) {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := kas.WriteAt(va, buf); err != nil {
		panic(err)
	}
}
