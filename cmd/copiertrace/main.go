// Command copiertrace prints a cycle-accurate timeline of the Copier
// service handling the paper's proxy pattern (§4.4): a lazy recv copy
// whose header is promoted by csync, a forwarding send that absorbs
// the unexecuted remainder straight from the kernel source, and the
// final abort discarding the dead intermediate copy.
package main

import (
	"fmt"

	"copier/internal/core"
	"copier/internal/cycles"
	"copier/internal/kernel"
	"copier/internal/libcopier"
	"copier/internal/mem"
	"copier/internal/sim"
)

func main() {
	m := kernel.NewMachine(kernel.Config{Cores: 3})
	m.Env.SetTracer(func(t sim.Time, format string, args ...any) {
		fmt.Printf("%10d  %s\n", t, fmt.Sprintf(format, args...))
	})
	m.InstallCopier(core.DefaultConfig(), 1, 2)
	proxy := m.NewProcess("proxy")
	attach := m.AttachCopier(proxy)

	const n = 32 << 10
	kas := m.KernelAS
	k1 := mustKBuf(kas, n) // incoming message in a kernel buffer
	fillK(kas, k1, n)
	u := mustBuf(proxy, n)  // proxy's user buffer
	k2 := mustKBuf(kas, n)  // outgoing kernel buffer

	th := m.Spawn(proxy, "forward", func(t *kernel.Thread) {
		lib := attach.Lib
		t.SimProc().Tracef("recv: submit LAZY copy K1 -> U (%d bytes)", n)
		desc := core.NewDescriptor(u, n, core.DefaultSegSize)
		err := lib.AmemcpyOpts(t, u, k1, n, libcopier.Opts{
			KMode: true, Lazy: true, Desc: desc, LazyDeadline: sim.Infinity,
			SrcAS: m.KernelAS, DstAS: proxy.AS,
		})
		if err != nil {
			panic(err)
		}
		t.SimProc().Tracef("csync header (128B) — promotes one segment only")
		if err := lib.CsyncDesc(t, desc, 0, 128); err != nil {
			panic(err)
		}
		t.Exec(cycles.Mul(128, cycles.ParseByteNum, cycles.ParseByteDen))
		t.SimProc().Tracef("route decided; send U -> K2 (absorbs the rest from K1)")
		sendDesc := core.NewDescriptor(k2, n, core.DefaultSegSize)
		err = lib.AmemcpyOpts(t, k2, u, n, libcopier.Opts{
			KMode: true, Desc: sendDesc, NoTrack: true,
			SrcAS: proxy.AS, DstAS: m.KernelAS,
		})
		if err != nil {
			panic(err)
		}
		if err := lib.CsyncDesc(t, sendDesc, 0, n); err != nil {
			panic(err)
		}
		t.SimProc().Tracef("forwarded; abort the dead lazy copy")
		attach.Client.SubmitAbortDesc(desc, false)
		t.Exec(5_000)
	})
	if err := m.RunApps(th); err != nil {
		panic(err)
	}
	svc := m.Copier()
	fmt.Printf("\nstats: tasks=%d absorbed=%dB aborted=%d avx=%dB dma=%dB\n",
		svc.Stats.TasksExecuted, svc.Stats.AbsorbedBytes, svc.Stats.AbortedTasks,
		svc.Stats.AVXBytes, svc.Stats.DMABytes)
}

func mustBuf(p *kernel.Process, n int) mem.VA {
	va := p.AS.MMap(int64(n), mem.PermRead|mem.PermWrite, "buf")
	if _, err := p.AS.Populate(va, int64(n), true); err != nil {
		panic(err)
	}
	return va
}

func mustKBuf(kas *mem.AddrSpace, n int) mem.VA {
	va := kas.MMap(int64(n), mem.PermRead|mem.PermWrite, "kbuf")
	if _, err := kas.Populate(va, int64(n), true); err != nil {
		panic(err)
	}
	return va
}

func fillK(kas *mem.AddrSpace, va mem.VA, n int) {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := kas.WriteAt(va, buf); err != nil {
		panic(err)
	}
}
