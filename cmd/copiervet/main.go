// Command copiervet is the project-invariant static-analysis suite:
// it machine-checks the properties that make this reproduction
// trustworthy — byte-determinism of the simulator domain, zero-alloc
// hot paths, cost-model hygiene, dimensional safety of the typed
// quantities, all-or-nothing atomicity on the real-concurrency fast
// paths, lifecycle typestate of the protocol objects, and
// happens-before publication order of the lock-free structures — the
// way the paper's own CopierSanitizer (§5.1.2) checks programs
// against the Copier model.
//
// Usage:
//
//	copiervet [-rules det-time,unit-conv,...] [-json] [-v] [packages]
//
// With no packages it walks ./... from the current directory. Each
// finding prints as file:line:col: rule: message (fix: hint), sorted
// by (file, line, column, rule) so output is byte-stable; a per-rule
// count summary is printed on failure. -json replaces the text lines
// with one JSON array of {file,line,col,rule,msg,hint} objects (same
// order, same exit codes) for editor and CI integration; the analyzer
// inventory behind both streams is lint.Analyzers, the one registry
// in internal/lint/run.go. -v reports how long the shared package
// load and each analyzer took, one phase per registry entry. See
// internal/lint for the rule inventory and the //copiervet:ignore
// suppression syntax.
//
// Exit status is part of the contract scripts build on:
//
//	0 — no findings
//	1 — at least one unsuppressed finding
//	2 — the run itself failed (bad flags, unknown rule, load error)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"copier/internal/lint"
)

// jsonFinding is the -json record shape; the field set mirrors the
// text format so either stream carries the full finding.
type jsonFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
	Hint string `json:"hint,omitempty"`
}

func main() {
	os.Exit(vetMain(os.Args[1:], os.Stdout, os.Stderr))
}

// vetMain is the whole command, separated from main so tests can pin
// the output and exit-code contract without spawning a process.
func vetMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("copiervet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated rule IDs to check (default: all)")
	list := fs.Bool("list", false, "list known rules and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text lines")
	verbose := fs.Bool("v", false, "print per-analyzer timing to stderr")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: copiervet [-rules r1,r2] [-list] [-json] [-v] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers {
			fmt.Fprintf(stdout, "# %s — %s\n", a.Name, a.Doc)
			for _, r := range a.Rules {
				fmt.Fprintln(stdout, r)
			}
		}
		fmt.Fprintf(stdout, "# driver — suppression hygiene\n")
		fmt.Fprintln(stdout, lint.RuleSuppressBare)
		fmt.Fprintln(stdout, lint.RuleSuppressUnused)
		return 0
	}

	opts := lint.Options{Dir: ".", Patterns: fs.Args()}
	if *rules != "" {
		for _, r := range strings.Split(*rules, ",") {
			r = strings.TrimSpace(r)
			if !lint.KnownRule(r) {
				fmt.Fprintf(stderr, "copiervet: unknown rule %q (try -list)\n", r)
				return 2
			}
			opts.Rules = append(opts.Rules, r)
		}
	}

	res, err := lint.Run(opts)
	if err != nil {
		fmt.Fprintf(stderr, "copiervet: %v\n", err)
		return 2
	}

	if *verbose {
		for _, pt := range res.Timings {
			fmt.Fprintf(stderr, "copiervet: %-10s %v\n", pt.Name, pt.D)
		}
	}

	cwd, _ := os.Getwd()
	if *jsonOut {
		recs := make([]jsonFinding, 0, len(res.Findings))
		for _, f := range res.Findings {
			recs = append(recs, jsonFinding{
				File: lint.RelPath(cwd, f.Pos.Filename),
				Line: f.Pos.Line, Col: f.Pos.Column,
				Rule: f.Rule, Msg: f.Msg, Hint: f.Hint,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(recs); err != nil {
			fmt.Fprintf(stderr, "copiervet: %v\n", err)
			return 2
		}
	} else {
		for _, f := range res.Findings {
			f.Pos.Filename = lint.RelPath(cwd, f.Pos.Filename)
			fmt.Fprintln(stdout, f.String())
		}
	}
	if n := len(res.Findings); n > 0 {
		fmt.Fprintf(stderr, "copiervet: %d finding(s): %s\n", n, lint.FormatCounts(res.Counts))
		return 1
	}
	return 0
}
