// Command copiervet is the project-invariant static-analysis suite:
// it machine-checks the properties that make this reproduction
// trustworthy — byte-determinism of the simulator domain, zero-alloc
// hot paths, and cost-model hygiene — the way the paper's own
// CopierSanitizer (§5.1.2) checks programs against the Copier model.
//
// Usage:
//
//	copiervet [-rules det-time,noalloc-escape,...] [packages]
//
// With no packages it walks ./... from the current directory. Each
// finding prints as file:line:col: rule: message (fix: hint); the
// exit status is 1 if any unsuppressed finding remains, and a
// per-rule count summary is printed on failure. See internal/lint
// for the rule inventory and the //copiervet:ignore suppression
// syntax.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"copier/internal/lint"
)

func main() {
	rules := flag.String("rules", "", "comma-separated rule IDs to check (default: all)")
	list := flag.Bool("list", false, "list known rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: copiervet [-rules r1,r2] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, r := range lint.AllRules {
			fmt.Println(r)
		}
		return
	}

	opts := lint.Options{Dir: ".", Patterns: flag.Args()}
	if *rules != "" {
		for _, r := range strings.Split(*rules, ",") {
			r = strings.TrimSpace(r)
			if !lint.KnownRule(r) {
				fmt.Fprintf(os.Stderr, "copiervet: unknown rule %q (try -list)\n", r)
				os.Exit(2)
			}
			opts.Rules = append(opts.Rules, r)
		}
	}

	res, err := lint.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "copiervet: %v\n", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	for _, f := range res.Findings {
		f.Pos.Filename = lint.RelPath(cwd, f.Pos.Filename)
		fmt.Println(f.String())
	}
	if n := len(res.Findings); n > 0 {
		fmt.Fprintf(os.Stderr, "copiervet: %d finding(s): %s\n", n, lint.FormatCounts(res.Counts))
		os.Exit(1)
	}
}
