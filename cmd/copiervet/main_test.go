package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"

	"copier/internal/lint"
)

// These tests pin the command contract scripts build on: exit code 0
// on a clean tree, 1 when findings remain, 2 when the run itself
// fails; findings printed one per line in (file, line, column, rule)
// order so output is byte-stable run over run.

func runVet(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = vetMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCleanIsZero(t *testing.T) {
	// The command's own package is part of the always-clean tree.
	code, stdout, stderr := runVet(t, ".")
	if code != 0 {
		t.Fatalf("exit = %d on clean package, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run printed findings:\n%s", stdout)
	}
}

func TestExitFindingsIsOne(t *testing.T) {
	code, stdout, stderr := runVet(t, "./testdata/src/broken")
	if code != 1 {
		t.Fatalf("exit = %d on broken corpus, want 1\nstderr:\n%s", code, stderr)
	}
	lines := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
	if len(lines) < 4 {
		t.Fatalf("want >= 4 findings (unit-conv x2, unit-mix, suppress-bare), got %d:\n%s", len(lines), stdout)
	}
	// Every line carries position, rule and a fix hint.
	lineRE := regexp.MustCompile(`^[^:]+:\d+:\d+: [a-z-]+: .+ \(fix: .+\)$`)
	for _, l := range lines {
		if !lineRE.MatchString(l) {
			t.Errorf("malformed finding line: %q", l)
		}
	}
	for _, want := range []string{"unit-conv", "unit-mix", "suppress-bare"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("missing %s finding in output:\n%s", want, stdout)
		}
	}
	if !strings.Contains(stderr, "finding(s):") {
		t.Errorf("missing per-rule summary on stderr: %q", stderr)
	}
	// Output is sorted by (file, line, col, rule).
	if !sort.SliceIsSorted(lines, func(i, j int) bool { return findingLess(t, lines[i], lines[j]) }) {
		t.Errorf("findings not sorted:\n%s", stdout)
	}
}

// findingLess orders two formatted finding lines the way SortFindings
// promises to.
func findingLess(t *testing.T, a, b string) bool {
	t.Helper()
	re := regexp.MustCompile(`^([^:]+):(\d+):(\d+): ([a-z-]+):`)
	ma, mb := re.FindStringSubmatch(a), re.FindStringSubmatch(b)
	if ma == nil || mb == nil {
		t.Fatalf("unparseable finding line: %q / %q", a, b)
	}
	if ma[1] != mb[1] {
		return ma[1] < mb[1]
	}
	if ma[2] != mb[2] {
		return len(ma[2]) < len(mb[2]) || (len(ma[2]) == len(mb[2]) && ma[2] < mb[2])
	}
	if ma[3] != mb[3] {
		return len(ma[3]) < len(mb[3]) || (len(ma[3]) == len(mb[3]) && ma[3] < mb[3])
	}
	return ma[4] < mb[4]
}

// TestJSONOutput pins the -json contract: one array of
// {file,line,col,rule,msg,hint} records in the same sorted order as
// the text format, with the same exit codes.
func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runVet(t, "-json", "./testdata/src/broken")
	if code != 1 {
		t.Fatalf("exit = %d on broken corpus, want 1", code)
	}
	var recs []struct {
		File string `json:"file"`
		Line int    `json:"line"`
		Col  int    `json:"col"`
		Rule string `json:"rule"`
		Msg  string `json:"msg"`
		Hint string `json:"hint"`
	}
	if err := json.Unmarshal([]byte(stdout), &recs); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout)
	}
	if len(recs) < 4 {
		t.Fatalf("want >= 4 findings, got %d", len(recs))
	}
	for i, r := range recs {
		if r.File == "" || r.Line <= 0 || r.Col <= 0 || r.Rule == "" || r.Msg == "" {
			t.Errorf("record %d incomplete: %+v", i, r)
		}
	}
	// Same findings, same order as the text stream.
	_, text, _ := runVet(t, "./testdata/src/broken")
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) != len(recs) {
		t.Fatalf("json has %d records, text has %d lines", len(recs), len(lines))
	}
	for i, r := range recs {
		prefix := fmt.Sprintf("%s:%d:%d: %s: ", r.File, r.Line, r.Col, r.Rule)
		if !strings.HasPrefix(lines[i], prefix) {
			t.Errorf("record %d (%s) does not match text line %q", i, prefix, lines[i])
		}
	}
	// A clean package still emits a (possibly empty) array.
	code, stdout, _ = runVet(t, "-json", ".")
	if code != 0 {
		t.Fatalf("exit = %d on clean package, want 0", code)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Errorf("clean -json run should print an empty array, got %q", stdout)
	}
}

func TestExitLoadErrorIsTwo(t *testing.T) {
	// Outside any module the loader cannot even start.
	tmp := t.TempDir()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(tmp); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)
	code, _, stderr := runVet(t)
	if code != 2 {
		t.Fatalf("exit = %d outside a module, want 2\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "copiervet:") {
		t.Errorf("missing error message on stderr: %q", stderr)
	}
}

func TestExitBadUsageIsTwo(t *testing.T) {
	if code, _, _ := runVet(t, "-rules", "no-such-rule"); code != 2 {
		t.Errorf("unknown rule: exit = %d, want 2", code)
	}
	if code, _, _ := runVet(t, "-no-such-flag"); code != 2 {
		t.Errorf("bad flag: exit = %d, want 2", code)
	}
}

func TestListPrintsAllRules(t *testing.T) {
	code, stdout, _ := runVet(t, "-list")
	if code != 0 {
		t.Fatalf("-list: exit = %d, want 0", code)
	}
	for _, r := range lint.AllRules {
		if !strings.Contains(stdout, r+"\n") {
			t.Errorf("-list output missing rule %s", r)
		}
	}
}

func TestVerboseTimings(t *testing.T) {
	code, _, stderr := runVet(t, "-v", ".")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, stderr)
	}
	// The load happens once and every registered analyzer reports a
	// phase — iterating the registry keeps this test honest when an
	// eighth analyzer lands.
	phases := []string{"load"}
	for _, a := range lint.Analyzers {
		phases = append(phases, a.Name)
	}
	if len(phases) < 8 {
		t.Fatalf("registry lists %d analyzers, want >= 7", len(phases)-1)
	}
	for _, phase := range phases {
		if !strings.Contains(stderr, phase) {
			t.Errorf("-v output missing phase %q:\n%s", phase, stderr)
		}
	}
	if strings.Count(stderr, "load") != 1 {
		t.Errorf("load phase should appear exactly once (shared across analyzers):\n%s", stderr)
	}
}
