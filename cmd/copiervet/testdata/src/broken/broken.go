// Package broken seeds one violation per analyzer family that runs
// under the default configuration, so the command-level tests can pin
// the exit-code and output contract against real findings.
package broken

import "copier/internal/units"

// A bytes-for-pages mixup: 4096x calibration error, compiles fine.
func pagesOfBytes(b units.Bytes) units.Pages {
	return units.Pages(b)
}

// Laundered mixed-dimension arithmetic.
func sum(b units.Bytes, p units.Pages) int {
	return int(b) + int(p)
}

//copiervet:ignore det-time
var _ = 0
