package broken

import "copier/internal/units"

// Same mixup in a second file, so the sorted-output test sees
// findings from more than one file.
func moreBytesToPages(b units.Bytes) units.Pages {
	return units.Pages(b + 1)
}
