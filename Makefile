# Convenience targets; scripts/check.sh is the source of truth for
# the tier-1 gate.

.PHONY: check lint test bench fuzz chaos

check:
	./scripts/check.sh

# Project-invariant static analysis (see internal/lint): seven
# analyzers over one shared package load — determinism hygiene
# (detlint), //copier:noalloc contracts (alloclint), cost-model
# hygiene (cyclelint), dimensional safety of units.Bytes/units.Pages/
# sim.Time (unitlint), all-or-nothing sync/atomic field access in
# the real-concurrency packages (atomiclint), handle/task/pin
# lifecycle typestate (lifelint), and happens-before publication
# order per //copier:ordered contracts (ordlint). The analyzer
# registry in internal/lint/run.go is the authoritative list. Add -v
# for per-analyzer timing.
lint:
	go run ./cmd/copiervet . ./cmd/... ./internal/... ./examples/...

test:
	go test ./...

# Refresh the checked-in hot-path microbenchmark results, then run
# the package benchmarks for the experiment tables.
bench:
	go run ./cmd/copierbench -benchjson BENCH_results.json
	go test -bench=. -benchmem ./internal/bench

# Short continuation runs over the checked-in seed corpora.
fuzz:
	go test ./internal/core -run=^$$ -fuzz=FuzzRing -fuzztime=30s
	go test ./internal/core -run=^$$ -fuzz=FuzzFaultSchedule -fuzztime=30s
	go test ./internal/core -run=^$$ -fuzz=FuzzHealthTransitions -fuzztime=30s
	go test ./internal/copiergen -run=^$$ -fuzz=FuzzPortSemantics -fuzztime=30s
	go test ./internal/copiergen -run=^$$ -fuzz=FuzzPortIdempotent -fuzztime=30s
	go test ./internal/lint -run=^$$ -fuzz=FuzzSuppress -fuzztime=30s
	go test ./internal/lint -run=^$$ -fuzz=FuzzOrdSpec -fuzztime=30s
	go test ./internal/bench -run=^$$ -fuzz=FuzzArrivalSchedule -fuzztime=30s

# Full chaos sweep: seeded fault injection + client death over the
# copy service, plus the determinism goldens that run it twice.
chaos:
	go run ./cmd/copierbench -run chaos -full
	go test -run 'TestChaos' -v ./internal/bench
