module copier

go 1.23
